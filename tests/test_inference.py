"""Tiled batched inference engine: equivalence, caching, planning, fast path."""

import numpy as np
import pytest

from repro.autodiff import (
    Tensor,
    enable_grad,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
    ops,
)
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.core.latent_grid import regular_grid_coordinates
from repro.inference import (
    GridQueryPlanner,
    InferenceEngine,
    LatentTileCache,
    QueryPlanner,
    TileLayout,
    pack_groups,
    smoothstep,
)


@pytest.fixture(scope="module")
def model():
    """Eval-mode tiny model shared by the equivalence tests (read-only)."""
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()


@pytest.fixture(scope="module")
def lowres():
    """A (1, 4, 4, 24, 40) low-resolution domain, larger than one crop."""
    rng = np.random.default_rng(42)
    return rng.standard_normal((1, 4, 4, 24, 40))


def tile_layout(domain=(4, 24, 40), tile=(4, 16, 16), halo=(3, 5, 5),
                divisor=(1, 2, 2), ramp_width=2.0) -> TileLayout:
    return TileLayout(domain, tile, halo=halo, divisor=divisor, ramp_width=ramp_width)


# --------------------------------------------------------------------------- #
# Tiled output == direct output                                               #
# --------------------------------------------------------------------------- #
@pytest.mark.float64_default
class TestTiledDirectEquivalence:
    @pytest.mark.parametrize("tile_shape,ramp_width", [
        ((4, 16, 16), 2.0),   # tiling along z and x
        ((4, 16, 24), 0.0),   # sharp (zero-width) hand-off
        ((4, 18, 20), 5.0),   # wide ramp, tile not dividing the domain
        ((4, 24, 16), 2.0),   # tiling along x only
    ])
    def test_predict_grid_matches_direct(self, model, lowres, tile_shape, ramp_width):
        """Tiled dense prediction equals the untiled path within 1e-8."""
        out_shape = (8, 32, 48)
        direct = model.predict_grid(Tensor(lowres), out_shape)
        tiled = model.predict_grid(Tensor(lowres), out_shape,
                                   tile_shape=tile_shape,
                                   engine=InferenceEngine(model, tile_shape=tile_shape,
                                                          ramp_width=ramp_width))
        assert tiled.shape == direct.shape
        assert np.max(np.abs(tiled - direct)) < 1e-8

    def test_time_axis_tiling(self, model):
        """Tiles that split the time axis also reproduce the direct result."""
        rng = np.random.default_rng(7)
        lowres = rng.standard_normal((1, 4, 16, 8, 8))
        direct = model.predict_grid(Tensor(lowres), (24, 12, 12))
        engine = InferenceEngine(model, tile_shape=(10, 8, 8), ramp_width=0.0)
        tiled = engine.predict_grid(lowres, (24, 12, 12))
        assert engine.open(lowres).layout.grid_shape[0] > 1
        assert np.max(np.abs(tiled - direct)) < 1e-8

    def test_scattered_points_match_direct(self, model, lowres):
        """field.query at arbitrary coordinates equals direct decoding."""
        rng = np.random.default_rng(3)
        coords = rng.random((500, 3))
        direct = InferenceEngine(model).query_points(lowres, coords)
        tiled = InferenceEngine(model, tile_shape=(4, 16, 16)).query_points(lowres, coords)
        assert np.max(np.abs(tiled - direct)) < 1e-8

    def test_batched_samples(self, model):
        """Equivalence holds with more than one sample in the batch."""
        rng = np.random.default_rng(11)
        lowres = rng.standard_normal((2, 4, 4, 24, 24))
        direct = model.predict_grid(Tensor(lowres), (4, 24, 24))
        tiled = model.predict_grid(Tensor(lowres), (4, 24, 24), tile_shape=(4, 16, 16))
        assert np.max(np.abs(tiled - direct)) < 1e-8

    def test_larger_halo_still_exact(self, model, lowres):
        """Halo values above the exact bound only add overlap, never error."""
        engine = InferenceEngine(model, tile_shape=(4, 20, 20), halo=(4, 7, 7))
        direct = model.predict_grid(Tensor(lowres), (4, 24, 40))
        tiled = engine.predict_grid(lowres, (4, 24, 40))
        assert np.max(np.abs(tiled - direct)) < 1e-8

    def test_super_resolve_tiled(self, model, lowres):
        direct = model.super_resolve(Tensor(lowres), (2, 2, 2))
        tiled = model.super_resolve(Tensor(lowres), (2, 2, 2), tile_shape=(4, 16, 16))
        assert np.max(np.abs(tiled - direct)) < 1e-8

    def test_chunk_size_invariance(self, model, lowres):
        engine_small = InferenceEngine(model, tile_shape=(4, 16, 16), chunk_size=123)
        engine_large = InferenceEngine(model, tile_shape=(4, 16, 16), chunk_size=50_000)
        a = engine_small.predict_grid(lowres, (4, 24, 40))
        b = engine_large.predict_grid(lowres, (4, 24, 40))
        assert np.allclose(a, b)

    def test_group_norm_warns_and_is_marked_inexact(self):
        cfg = MeshfreeFlowNetConfig.tiny(unet_norm="group")
        gmodel = MeshfreeFlowNet(cfg).eval()
        with pytest.warns(UserWarning, match="group normalisation"):
            engine = InferenceEngine(gmodel, tile_shape=(4, 16, 16))
        assert not engine.is_exact
        assert InferenceEngine(gmodel).is_exact  # direct mode is always exact


# --------------------------------------------------------------------------- #
# Receptive-field halo                                                        #
# --------------------------------------------------------------------------- #
class TestReceptiveHalo:
    @pytest.mark.parametrize("pools", [((1, 2, 2),), ((2, 2, 2),), ((1, 1, 1),)])
    def test_halo_bounds_observed_receptive_field(self, pools):
        """Perturbing one input voxel changes latents only within the halo."""
        cfg = MeshfreeFlowNetConfig.tiny(unet_pool_factors=pools)
        net = MeshfreeFlowNet(cfg).eval().unet
        halo = net.receptive_halo()
        div = net.required_divisor()
        shape = tuple(int(np.ceil((4 * h + 2) / d) * d) for h, d in zip(halo, div))
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, cfg.in_channels, *shape))
        centre = tuple(s // 2 for s in shape)
        x2 = x.copy()
        x2[(0, 0, *centre)] += 1.0
        with inference_mode():
            base = net(Tensor(x)).data
            pert = net(Tensor(x2)).data
        changed = np.argwhere(np.abs(pert - base).sum(axis=(0, 1)) > 1e-12)
        assert changed.size > 0
        for axis in range(3):
            reach = np.abs(changed[:, axis] - centre[axis]).max()
            assert reach <= halo[axis]

    def test_halo_grows_with_depth(self):
        shallow = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).unet.receptive_halo()
        deep = MeshfreeFlowNet(MeshfreeFlowNetConfig.small()).unet.receptive_halo()
        assert all(d > s for s, d in zip(shallow, deep))


# --------------------------------------------------------------------------- #
# LRU latent cache                                                            #
# --------------------------------------------------------------------------- #
class TestLatentTileCache:
    def test_hits_misses_evictions(self):
        cache = LatentTileCache(capacity=2)
        make = lambda v: (lambda: np.full((2, 2), float(v)))
        cache.get_or_create("a", make(1))
        cache.get_or_create("b", make(2))
        cache.get_or_create("a", make(1))          # hit, refreshes "a"
        cache.get_or_create("c", make(3))          # evicts "b" (LRU)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats().hits == 1
        assert cache.stats().misses == 3
        assert cache.stats().evictions == 1
        assert cache.stats().current_bytes == 2 * np.full((2, 2), 0.0).nbytes
        assert 0 < cache.stats().hit_rate < 1

    def test_unbounded_and_invalid_capacity(self):
        cache = LatentTileCache(capacity=None)
        for i in range(100):
            cache.get_or_create(i, lambda: np.zeros(1))
        assert len(cache) == 100 and cache.stats().evictions == 0
        with pytest.raises(ValueError):
            LatentTileCache(capacity=0)

    def test_field_reuse_hits_cache(self, model, lowres):
        """Re-querying an open field decodes from cached latents."""
        engine = InferenceEngine(model, tile_shape=(4, 16, 16), cache_tiles=None)
        field = engine.open(lowres)
        field.predict_grid((4, 24, 40))
        misses_first = engine.cache_stats.misses
        field.predict_grid((4, 24, 40))
        assert engine.cache_stats.misses == misses_first  # second pass: all hits
        assert engine.cache_stats.hits > 0

    def test_cross_call_reuse_on_same_array(self, model, lowres):
        """Repeated calls with the same input array share cache entries."""
        engine = InferenceEngine(model, tile_shape=(4, 16, 16), cache_tiles=None)
        model.predict_grid(Tensor(lowres), (4, 24, 40), engine=engine)
        misses_first = engine.cache_stats.misses
        model.predict_grid(Tensor(lowres), (4, 24, 40), engine=engine)
        assert engine.cache_stats.misses == misses_first
        assert engine.cache_stats.hits >= misses_first
        # A different array must not alias the cached latents.
        other = lowres.copy()
        out_other = engine.predict_grid(other, (4, 24, 40))
        assert engine.cache_stats.misses == 2 * misses_first
        assert np.allclose(out_other, engine.predict_grid(lowres, (4, 24, 40)))

    def test_tile_major_order_encodes_each_tile_once(self, model, lowres):
        """Even a capacity-1 cache encodes every tile exactly once per pass."""
        engine = InferenceEngine(model, tile_shape=(4, 16, 16), cache_tiles=1)
        field = engine.open(lowres)
        field.predict_grid((4, 24, 40))
        assert engine.cache_stats.misses == field.layout.n_tiles


# --------------------------------------------------------------------------- #
# Tiling and planning                                                         #
# --------------------------------------------------------------------------- #
class TestTilingAndPlanner:
    def test_partition_of_unity(self):
        layout = tile_layout()
        planner = QueryPlanner(layout)
        rng = np.random.default_rng(0)
        coords = rng.random((400, 3))
        groups = planner.plan(coords)
        total = np.zeros(400)
        for g in groups:
            np.add.at(total, g.rows, g.weights)
        assert np.allclose(total, 1.0, atol=1e-12)

    def test_every_point_covered_with_local_coords_in_range(self):
        layout = tile_layout()
        groups = QueryPlanner(layout).plan(np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0],
                                                     [0.5, 0.5, 0.5]]))
        covered = sorted(set(int(r) for g in groups for r in g.rows))
        assert covered == [0, 1, 2]
        for g in groups:
            assert g.local_coords.min() >= 0.0 and g.local_coords.max() <= 1.0

    @pytest.mark.float64_default
    def test_grid_planner_matches_generic_planner(self):
        layout = tile_layout()
        shape = (6, 18, 22)
        coords = regular_grid_coordinates(shape)
        generic = {(g.tile, int(r)): w for g in QueryPlanner(layout).plan(coords)
                   for r, w in zip(g.rows, g.weights)}
        streamed = {(g.tile, int(r)): w for g in GridQueryPlanner(layout).plan(shape)
                    for r, w in zip(g.rows, g.weights)}
        assert set(streamed) == set(generic)
        for key, w in streamed.items():
            assert w == pytest.approx(generic[key], abs=1e-12)

    def test_grid_planner_is_tile_major(self):
        layout = tile_layout()
        tiles = [g.tile for g in GridQueryPlanner(layout).plan((6, 18, 22))]
        assert tiles == sorted(tiles)

    def test_smoothstep_properties(self):
        assert smoothstep(np.array(0.0)) == 0.0
        assert smoothstep(np.array(1.0)) == 1.0
        assert smoothstep(np.array(-5.0)) == 0.0 and smoothstep(np.array(7.0)) == 1.0
        u = np.linspace(0, 1, 101)
        s = smoothstep(u)
        assert np.all(np.diff(s) >= 0)                        # monotone
        assert np.allclose(s + smoothstep(1.0 - u), 1.0)      # exact complement

    def test_pack_groups_budget(self):
        layout = tile_layout()
        groups = QueryPlanner(layout).plan(np.random.default_rng(1).random((300, 3)))
        budget = 64
        batches = list(pack_groups(groups, budget=budget))
        assert sum(len(b) for b in batches) == len(groups)
        for batch in batches:
            width = max(g.n for g in batch)
            assert len(batch) == 1 or len(batch) * width <= budget
        assert [g.tile for b in batches for g in b] == [g.tile for g in groups]

    def test_layout_validation_errors(self):
        with pytest.raises(ValueError, match="not divisible"):
            tile_layout(domain=(4, 25, 40))                   # domain vs divisor
        with pytest.raises(ValueError, match="not divisible"):
            tile_layout(tile=(4, 15, 16))                     # tile vs divisor
        with pytest.raises(ValueError, match="too small"):
            tile_layout(tile=(4, 12, 16))                     # tile vs halo
        with pytest.raises(ValueError, match="ramp_width"):
            tile_layout(ramp_width=-1.0)


# --------------------------------------------------------------------------- #
# Engine API surface                                                          #
# --------------------------------------------------------------------------- #
class TestEngineAPI:
    def test_invalid_arguments(self, model, lowres):
        with pytest.raises(ValueError):
            InferenceEngine(model, chunk_size=0)
        with pytest.raises(ValueError):
            InferenceEngine(model, tile_shape=(4, 16))
        with pytest.raises(ValueError):
            InferenceEngine(model).open(np.zeros((4, 8, 8)))
        with pytest.raises(ValueError):
            InferenceEngine(model).open(lowres).query(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            InferenceEngine(model).predict_grid(lowres, (4, 16))

    @pytest.mark.float64_default
    def test_direct_mode_matches_manual_decode(self, model, lowres):
        """Direct mode reproduces encode-once + chunked-decode semantics."""
        from repro.autodiff import no_grad

        out_shape = (4, 24, 40)
        engine_out = InferenceEngine(model).predict_grid(lowres, out_shape)
        coords = regular_grid_coordinates(out_shape)
        with no_grad():
            grid = model.latent_grid(Tensor(lowres))
            pred = model.decode(grid, Tensor(coords[None])).data
        manual = np.moveaxis(pred.reshape(1, *out_shape, -1), -1, 1)
        assert np.allclose(engine_out, manual)

    def test_tiled_encode_restores_training_mode(self, model, lowres):
        model.train()
        try:
            engine = InferenceEngine(model, tile_shape=(4, 16, 16))
            engine.predict_grid(lowres, (4, 24, 40))
            assert model.unet.training
        finally:
            model.eval()

    def test_open_is_lazy(self, model, lowres):
        engine = InferenceEngine(model, tile_shape=(4, 16, 16))
        field = engine.open(lowres)
        assert engine.cache_stats.misses == 0
        assert field.n_batch == 1
        assert field.layout.n_tiles > 1


# --------------------------------------------------------------------------- #
# autodiff inference_mode fast path                                           #
# --------------------------------------------------------------------------- #
class TestInferenceMode:
    def test_no_graph_is_recorded(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with inference_mode():
            y = ops.mul(x, x)
            assert not y.requires_grad and y.is_leaf()
        assert is_grad_enabled() and not is_inference_mode()

    def test_matches_normal_forward(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((4, 5)), rng.random((5, 3))
        normal = ops.matmul(Tensor(a), Tensor(b)).data
        with inference_mode():
            fast = ops.matmul(Tensor(a), Tensor(b)).data
        assert np.array_equal(normal, fast)

    def test_flags_and_nesting(self):
        assert not is_inference_mode()
        with inference_mode():
            assert is_inference_mode() and not is_grad_enabled()
            with inference_mode():
                assert is_inference_mode()
            assert is_inference_mode()
        assert not is_inference_mode() and is_grad_enabled()

    def test_enable_grad_rejected_inside(self):
        with inference_mode():
            with pytest.raises(RuntimeError):
                with enable_grad():
                    pass  # pragma: no cover

    def test_model_forward_under_inference_mode(self, model, lowres):
        coords = np.random.default_rng(5).random((1, 7, 3))
        expected = model(Tensor(lowres), Tensor(coords)).data
        with inference_mode():
            fast = model(Tensor(lowres), Tensor(coords)).data
        assert np.allclose(expected, fast)


# --------------------------------------------------------------------------- #
# Concurrent engine use (serving workers share the engine and cache)          #
# --------------------------------------------------------------------------- #
class TestConcurrentEngineUse:
    def test_cache_single_flight_under_contention(self):
        """Concurrent misses on one key run the factory exactly once."""
        import threading

        cache = LatentTileCache(capacity=4)
        calls = []
        gate = threading.Barrier(8)

        def factory():
            calls.append(1)
            return np.zeros(3)

        def worker():
            gate.wait()
            cache.get_or_create("tile", factory)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 7

    def test_cache_factory_failure_releases_waiters(self):
        """A failing encode does not deadlock waiters; the key stays absent."""
        cache = LatentTileCache(capacity=4)
        with pytest.raises(RuntimeError):
            cache.get_or_create("bad", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert "bad" not in cache
        assert np.array_equal(cache.get_or_create("bad", lambda: np.ones(2)), np.ones(2))

    def test_cache_invalidate(self):
        cache = LatentTileCache(capacity=None)
        cache.get_or_create(("a", 0), lambda: np.zeros(2))
        cache.get_or_create(("a", 1), lambda: np.zeros(2))
        cache.get_or_create(("b", 0), lambda: np.zeros(2))
        assert cache.invalidate(lambda key: key[0] == "a") == 2
        assert ("a", 0) not in cache and ("b", 0) in cache
        assert cache.stats().current_bytes == np.zeros(2).nbytes

    @pytest.mark.parametrize("tile_shape", [None, (4, 16, 16)])
    def test_threaded_queries_match_single_threaded(self, model, lowres, tile_shape):
        """Multi-threaded clients on one shared engine reproduce serial results."""
        import threading

        engine = InferenceEngine(model, tile_shape=tile_shape, cache_tiles=None)
        rng = np.random.default_rng(11)
        point_sets = [rng.random((17, 3)) for _ in range(6)]
        grid_shape = (4, 24, 40)
        expected_points = [engine.query_points(lowres, c) for c in point_sets]
        expected_grid = engine.predict_grid(lowres, grid_shape)

        results = [None] * len(point_sets)
        grids = [None] * 2
        errors = []

        def point_client(i):
            try:
                results[i] = engine.query_points(lowres, point_sets[i])
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def grid_client(i):
            try:
                grids[i] = engine.predict_grid(lowres, grid_shape)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=point_client, args=(i,))
                   for i in range(len(point_sets))]
        threads += [threading.Thread(target=grid_client, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got, want in zip(results, expected_points):
            assert np.array_equal(got, want)
        for got in grids:
            assert np.array_equal(got, expected_grid)

    def test_shared_cache_across_engine_replicas(self, model, lowres):
        """Replica engines sharing a cache reuse latents via a named key."""
        from repro.inference import LatentTileCache as Cache

        shared = Cache(capacity=None)
        replicas = model.replicate(2)
        engines = [InferenceEngine(r, tile_shape=(4, 16, 16), cache=shared)
                   for r in replicas]
        coords = np.random.default_rng(3).random((9, 3))
        first = engines[0].open(lowres, key="dom").query(coords)
        misses = shared.stats().misses
        second = engines[1].open(lowres, key="dom").query(coords)
        assert shared.stats().misses == misses  # replica 2 decoded from cache
        assert np.array_equal(first, second)

    def test_replicate_shares_weight_arrays(self, model):
        """Shared-parameter replicas alias the source arrays exactly."""
        (replica,) = model.replicate(1)
        source = dict(model.named_parameters())
        for name, param in replica.named_parameters():
            assert param.data is source[name].data
        copy, = model.replicate(1, share_parameters=False)
        for name, param in copy.named_parameters():
            assert param.data is not source[name].data
            assert np.array_equal(param.data, source[name].data)

    def test_inference_mode_is_thread_local(self):
        """A worker's inference_mode must not leak into other threads."""
        import threading

        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def worker():
            with inference_mode():
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            assert entered.wait(timeout=10)
            observed["inference"] = is_inference_mode()
            observed["grad"] = is_grad_enabled()
        finally:
            release.set()
            thread.join()
        assert observed == {"inference": False, "grad": True}
        # And the worker's exit leaves this thread's state untouched.
        assert not is_inference_mode() and is_grad_enabled()
