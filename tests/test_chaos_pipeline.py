"""Chaos tests for the pipeline: per-stage retries and store-corruption recovery.

These prove the resumable-DAG layer under seeded chaos: a stage carrying a
:class:`~repro.faults.Retry` recovers from injected transient faults (in
the stage body, the store's load path, and the store's save path), torn
artifacts are detected by digest and recomputed, and — crucially — the warm
rerun after any chaos cold run is still 100% cache hits.
"""

import fnmatch

import pytest

from repro.faults import (
    FaultInjected,
    FaultPlan,
    PermanentError,
    Retry,
    TransientError,
    corrupt_file,
)
from repro.faults import plan as faults_plan
from repro.pipeline.artifacts import ArtifactCorrupted, ArtifactStore
from repro.pipeline.config import PipelineConfig, parse_toml
from repro.pipeline.graph import Pipeline, run_pipeline
from repro.pipeline.stage import Stage

FAST_RETRY = Retry(max_attempts=3, backoff=0.0, jitter=0.0)


def flaky_stage_body(ctx):
    """A stage body carrying its own injection site (``demo.compute``)."""
    if faults_plan.ACTIVE is not None:
        faults_plan.ACTIVE.fire("demo.compute")
    return {"value": 41 + 1}


def make_pipeline(retry=FAST_RETRY):
    return Pipeline([Stage("demo", flaky_stage_body, retry=retry)])


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestStageRetry:
    def test_transient_fault_is_retried_then_cached(self, store):
        plan = FaultPlan(seed=3)
        plan.fail("demo.compute", at=(1,), message="transient blip")
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        result = report.results["demo"]
        assert result.status == "computed"
        assert result.attempts == 2
        assert report.values["demo"] == {"value": 42}

        # Warm rerun after the chaos cold run: 100% cache hits.
        warm = run_pipeline(make_pipeline(), store=store)
        assert warm.results["demo"].status == "cached"
        assert warm.results["demo"].attempts == 1

    def test_permanent_fault_is_not_retried(self, store):
        plan = FaultPlan(seed=3)
        plan.fail("demo.compute", every=1, exc=PermanentError, message="bad config")
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        result = report.results["demo"]
        assert result.status == "failed"
        assert result.attempts == 1
        assert not report.ok

    def test_exhausted_retries_fail_the_stage(self, store):
        plan = FaultPlan(seed=3)
        plan.fail("demo.compute", every=1, message="always down")
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        result = report.results["demo"]
        assert result.status == "failed"
        assert result.attempts == FAST_RETRY.max_attempts

    def test_without_retry_transient_faults_fail_fast(self, store):
        plan = FaultPlan(seed=3)
        plan.fail("demo.compute", at=(1,), message="transient blip")
        with plan:
            report = run_pipeline(make_pipeline(retry=None), store=store)
        assert report.results["demo"].status == "failed"
        assert report.results["demo"].attempts == 1

    def test_attempts_survive_into_the_manifest(self, store):
        plan = FaultPlan(seed=3)
        plan.fail("demo.compute", at=(1,), message="transient blip")
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        entry = next(e for e in report.manifest()["stages"]
                     if e["name"] == "demo")
        assert entry["attempts"] == 2


class TestStoreChaos:
    def test_save_fault_is_retried(self, store):
        plan = FaultPlan(seed=5)
        plan.fail("pipeline.store.save", at=(1,), message="disk blip")
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        assert report.results["demo"].status == "computed"
        assert store.has(report.results["demo"].fingerprint)
        assert run_pipeline(make_pipeline(), store=store).results["demo"].status == "cached"

    def test_load_fault_is_retried_and_stays_cached(self, store):
        run_pipeline(make_pipeline(), store=store)  # warm the cache
        plan = FaultPlan(seed=6)
        plan.fail("pipeline.store.load", at=(1,), message="io blip")
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        # The retried load succeeded: no recompute happened.
        assert report.results["demo"].status == "cached"
        assert report.values["demo"] == {"value": 42}

    def test_corrupted_artifact_is_recomputed(self, store):
        cold = run_pipeline(make_pipeline(), store=store)
        fingerprint = cold.results["demo"].fingerprint

        plan = FaultPlan(seed=7, name="bitrot")
        plan.corrupt("pipeline.store.object_dir",
                     mutator=lambda obj_dir: corrupt_file(obj_dir / "value.json"),
                     at=(1,))
        with plan:
            report = run_pipeline(make_pipeline(), store=store)
        # The torn payload failed its digest, was deleted, and recomputed.
        assert report.results["demo"].status == "computed"
        assert report.values["demo"] == {"value": 42}
        assert plan.injected() == {("pipeline.store.object_dir", "corrupt"): 1}
        assert store.has(fingerprint)  # rewritten under the same fingerprint

        warm = run_pipeline(make_pipeline(), store=store)
        assert warm.results["demo"].status == "cached"

    def test_direct_load_raises_artifact_corrupted(self, store):
        cold = run_pipeline(make_pipeline(), store=store)
        fingerprint = cold.results["demo"].fingerprint
        plan = FaultPlan(seed=8)
        plan.corrupt("pipeline.store.object_dir",
                     mutator=lambda obj_dir: corrupt_file(obj_dir / "value.json"),
                     every=1)
        with plan:
            with pytest.raises(ArtifactCorrupted, match="digest"):
                store.load(fingerprint)


class TestRetryConfig:
    TOML = """
[pipeline]
name = "chaos"

[pipeline.retry]
max_attempts = 4
backoff = 0.01
multiplier = 3.0
jitter = 0.0
stages = ["train.*", "sim.*"]
"""

    def test_retry_section_parses_into_a_policy(self):
        cfg = PipelineConfig.from_dict(parse_toml(self.TOML))
        policy = cfg.retry_policy()
        assert policy.max_attempts == 4
        assert policy.backoff == pytest.approx(0.01)
        assert policy.multiplier == pytest.approx(3.0)
        assert cfg.retry_stage_patterns() == ("train.*", "sim.*")

    def test_no_section_means_no_policy(self):
        cfg = PipelineConfig()
        assert cfg.retry_policy() is None
        assert cfg.retry_stage_patterns() == ("*",)

    def test_unknown_retry_key_raises(self):
        with pytest.raises(KeyError, match="pipeline.retry"):
            PipelineConfig(retry={"attempts": 3})

    def test_invalid_retry_values_raise_eagerly(self):
        with pytest.raises(ValueError):
            PipelineConfig(retry={"max_attempts": 0})

    def test_standard_pipeline_attaches_policy_to_matching_stages(self):
        from repro.pipeline.stages import build_standard_pipeline

        cfg = PipelineConfig(retry={"max_attempts": 2, "backoff": 0.0,
                                    "stages": ["train.*"]})
        pipe = build_standard_pipeline(cfg)
        train = [s for s in pipe.stages if fnmatch.fnmatchcase(s.name, "train.*")]
        others = [s for s in pipe.stages if not fnmatch.fnmatchcase(s.name, "train.*")]
        assert train and others  # the selection is non-trivial
        assert all(s.retry is not None and s.retry.max_attempts == 2 for s in train)
        assert all(s.retry is None for s in others)

    def test_retry_never_enters_the_fingerprint(self):
        bare = Stage("demo", flaky_stage_body)
        retried = Stage("demo", flaky_stage_body, retry=FAST_RETRY)
        assert bare.compute_fingerprint({}) == retried.compute_fingerprint({})

    def test_checked_in_pipeline_toml_carries_a_retry_policy(self):
        from pathlib import Path

        from repro.pipeline.config import load_pipeline_config

        cfg = load_pipeline_config(Path(__file__).resolve().parents[1] / "pipeline.toml")
        policy = cfg.retry_policy()
        assert policy is not None and policy.max_attempts >= 2
