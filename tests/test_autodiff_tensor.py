"""Graph mechanics: Tensor, backward, grad(), no_grad."""

import numpy as np
import pytest

from repro.backend import default_dtype
from repro.autodiff import Tensor, enable_grad, grad, is_grad_enabled, no_grad, ops


class TestTensorBasics:
    def test_construction_from_list(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert x.shape == (3,)
        assert x.dtype == default_dtype()  # dtype-less data follows the policy
        assert not x.requires_grad

    def test_construction_from_tensor(self):
        x = Tensor([1.0, 2.0])
        y = Tensor(x, requires_grad=True)
        assert np.allclose(y.data, x.data)
        assert y.requires_grad

    def test_item_and_len(self):
        assert Tensor(3.5).item() == 3.5
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = ops.square(x).detach()
        assert y._op is None and not y.requires_grad

    def test_operators(self):
        a = Tensor([2.0, 4.0])
        b = Tensor([1.0, 2.0])
        assert np.allclose((a + b).data, [3.0, 6.0])
        assert np.allclose((a - b).data, [1.0, 2.0])
        assert np.allclose((a * b).data, [2.0, 8.0])
        assert np.allclose((a / b).data, [2.0, 2.0])
        assert np.allclose((-a).data, [-2.0, -4.0])
        assert np.allclose((a ** 2).data, [4.0, 16.0])
        assert np.allclose((3.0 + a).data, [5.0, 7.0])
        assert np.allclose((3.0 * a).data, [6.0, 12.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])
        assert np.allclose((1.0 - a).data, [-1.0, -3.0])

    def test_getitem_returns_tensor(self):
        a = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        b = a[1]
        assert isinstance(b, Tensor)
        assert np.allclose(b.data, np.arange(4.0) + 4)

    def test_comparisons_return_arrays(self):
        a = Tensor([1.0, 3.0])
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= Tensor([1.0, 1.0])).tolist() == [True, False]


class TestBackward:
    def test_scalar_backward(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = ops.sum(ops.square(x))
        y.backward()
        assert np.allclose(x.grad, 2 * x.data)

    def test_backward_accumulates(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        ops.sum(x).backward()
        ops.sum(x).backward()
        assert np.allclose(x.grad, [2.0, 2.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        ops.sum(x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_backward_with_explicit_grad_output(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = ops.square(x)
        y.backward(Tensor([1.0, 10.0]))
        assert np.allclose(x.grad, [2.0, 40.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with no_grad():
            y = ops.square(x)
        assert y._op is None
        assert not y.requires_grad

    def test_no_grad_nesting_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        y = ops.square(x)
        z = ops.sum(ops.add(y, y))
        z.backward()
        assert np.allclose(x.grad, [8.0])

    def test_diamond_graph(self):
        x = Tensor([3.0], requires_grad=True)
        a = ops.square(x)      # x^2
        b = ops.mul(x, Tensor([2.0]))  # 2x
        y = ops.sum(ops.mul(a, b))     # 2x^3 -> dy/dx = 6x^2
        y.backward()
        assert np.allclose(x.grad, [6 * 9.0])


class TestGradAPI:
    def test_grad_single_tensor(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        g = grad(ops.sum(ops.square(x)), x)
        assert np.allclose(g.data, 2 * x.data)
        assert x.grad is None  # functional API must not touch .grad

    def test_grad_multiple_inputs(self):
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([2.0], requires_grad=True)
        gx, gy = grad(ops.sum(ops.mul(x, y)), [x, y])
        assert np.allclose(gx.data, y.data)
        assert np.allclose(gy.data, x.data)

    def test_grad_unused_input_returns_none(self):
        x = Tensor([1.0], requires_grad=True)
        z = Tensor([5.0], requires_grad=True)
        g = grad(ops.sum(ops.square(x)), [x, z])
        assert g[1] is None

    def test_grad_unused_raises_when_not_allowed(self):
        x = Tensor([1.0], requires_grad=True)
        z = Tensor([5.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            grad(ops.sum(x), [z], allow_unused=False)

    def test_grad_outputs_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = ops.square(x)
        with pytest.raises(ValueError):
            grad(y, x, grad_outputs=Tensor([1.0, 2.0, 3.0]))

    def test_grad_with_grad_outputs(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = ops.square(x)
        g = grad(y, x, grad_outputs=Tensor([0.0, 1.0]))
        assert np.allclose(g.data, [0.0, 4.0])

    def test_create_graph_retains_differentiability(self):
        x = Tensor([0.5], requires_grad=True)
        g1 = grad(ops.sum(ops.exp(x)), x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        assert np.allclose(g2.data, np.exp(0.5))

    def test_without_create_graph_gradients_are_detached(self):
        x = Tensor([0.5], requires_grad=True)
        g1 = grad(ops.sum(ops.exp(x)), x, create_graph=False)
        assert g1._op is None

    def test_grad_through_constant_is_none(self):
        x = Tensor([1.0])  # requires_grad=False
        y = Tensor([2.0], requires_grad=True)
        out = ops.sum(ops.mul(x, y))
        assert grad(out, x) is None
