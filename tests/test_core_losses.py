"""Prediction loss, equation loss, combined loss."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import (
    LossWeights,
    MeshfreeFlowNet,
    MeshfreeFlowNetConfig,
    compute_losses,
    equation_loss,
    prediction_loss,
)
from repro.pde import RayleighBenard2D, divergence_free_system


class TestPredictionLoss:
    def test_l1_value(self, rng):
        pred = Tensor(rng.standard_normal((2, 5, 4)))
        target = Tensor(rng.standard_normal((2, 5, 4)))
        expected = np.abs(pred.data - target.data).mean()
        assert prediction_loss(pred, target, "l1").data == pytest.approx(expected)

    def test_l2_value(self, rng):
        pred = Tensor(rng.standard_normal((3, 4)))
        target = Tensor(rng.standard_normal((3, 4)))
        expected = ((pred.data - target.data) ** 2).mean()
        assert prediction_loss(pred, target, "l2").data == pytest.approx(expected)

    def test_zero_for_perfect_prediction(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert prediction_loss(x, Tensor(x.data.copy())).data == pytest.approx(0.0)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            prediction_loss(Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 2))))

    def test_unknown_norm(self, rng):
        with pytest.raises(ValueError):
            prediction_loss(Tensor(np.zeros(2)), Tensor(np.zeros(2)), norm="linf")


class TestEquationLoss:
    def test_zero_residuals(self):
        residuals = {"continuity": Tensor(np.zeros((2, 8)))}
        assert equation_loss(residuals).data == pytest.approx(0.0)

    def test_average_over_constraints(self):
        residuals = {
            "a": Tensor(np.full((4,), 2.0)),
            "b": Tensor(np.full((4,), 4.0)),
        }
        assert equation_loss(residuals, "l1").data == pytest.approx(3.0)

    def test_empty_returns_zero(self):
        assert equation_loss({}).data == pytest.approx(0.0)

    def test_l2(self):
        residuals = {"a": Tensor(np.full((3,), 2.0))}
        assert equation_loss(residuals, "l2").data == pytest.approx(4.0)


class TestLossWeights:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossWeights(gamma=-0.1)
        with pytest.raises(ValueError):
            LossWeights(norm="l3")

    def test_defaults_match_paper(self):
        assert LossWeights().gamma == pytest.approx(0.0125)


class TestComputeLosses:
    @pytest.fixture
    def setup(self, rng):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        lowres = Tensor(rng.standard_normal((1, 4, 2, 8, 8)))
        coords = Tensor(rng.random((1, 8, 3)), requires_grad=True)
        targets = Tensor(rng.standard_normal((1, 8, 4)))
        return model, lowres, coords, targets

    def test_gamma_zero_skips_equation_loss(self, setup):
        model, lowres, coords, targets = setup
        pde = RayleighBenard2D()
        total, breakdown = compute_losses(model, lowres, coords, targets, pde,
                                          LossWeights(gamma=0.0))
        assert breakdown.equation == 0.0
        assert breakdown.per_constraint == {}
        assert total.data == pytest.approx(breakdown.prediction)

    def test_gamma_positive_adds_weighted_equation_loss(self, setup):
        model, lowres, coords, targets = setup
        pde = divergence_free_system()
        gamma = 0.25
        total, breakdown = compute_losses(model, lowres, coords, targets, pde,
                                          LossWeights(gamma=gamma))
        assert breakdown.equation > 0.0
        assert total.data == pytest.approx(breakdown.prediction + gamma * breakdown.equation)
        assert "continuity" in breakdown.per_constraint

    def test_no_pde_system(self, setup):
        model, lowres, coords, targets = setup
        total, breakdown = compute_losses(model, lowres, coords, targets, None,
                                          LossWeights(gamma=0.5))
        assert breakdown.equation == 0.0

    def test_total_is_differentiable(self, setup):
        model, lowres, coords, targets = setup
        pde = divergence_free_system()
        total, _ = compute_losses(model, lowres, coords, targets, pde, LossWeights(gamma=0.1))
        total.backward()
        assert all(p.grad is not None for p in model.parameters())
