"""Optimizer and scheduler tests."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor, ops
from repro.nn.module import Parameter
from repro.optim import (
    SGD,
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    StepLR,
    WarmupLR,
    build_scheduler,
    clip_grad_norm,
)


def quadratic_loss(p: Parameter) -> Tensor:
    """f(p) = sum((p - 3)^2): minimised at p = 3."""
    return ops.sum(ops.square(ops.sub(p, Tensor(np.full(p.shape, 3.0)))))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.zeros(4))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                loss = quadratic_loss(p)
                loss.backward()
                opt.step()
            losses[momentum] = float(quadratic_loss(p).data)
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        ops.sum(p * Tensor(np.zeros(3))).backward()  # zero data gradient
        opt.step()
        assert np.all(np.abs(p.data) < 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_skips_params_without_grad(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward called
        assert np.allclose(p.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.full(3, -5.0))
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-3)

    def test_bias_correction_first_step(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        ops.sum(p * Tensor(np.array([2.0]))).backward()  # constant gradient 2
        opt.step()
        # With bias correction the first step should be ~ -lr * sign(grad).
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.5, 0.9))

    def test_trains_small_network(self, rng):
        net = nn.Sequential(nn.Linear(2, 8, rng=rng), nn.Tanh(), nn.Linear(8, 1, rng=rng))
        opt = Adam(net.parameters(), lr=5e-2)
        x = Tensor(rng.standard_normal((32, 2)))
        y = Tensor((x.data[:, :1] * 2 - x.data[:, 1:]) * 0.5)
        first = None
        for i in range(60):
            opt.zero_grad()
            loss = ops.mse_loss(net(x), y)
            if first is None:
                first = float(loss.data)
            loss.backward()
            opt.step()
        assert float(loss.data) < 0.2 * first

    def test_state_dict_roundtrip(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        quadratic_loss(p).backward()
        opt.step()
        state = opt.state_dict()
        opt2 = Adam([p], lr=0.5)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.1
        assert opt2._step_count == 1
        assert np.allclose(opt2.state[0]["m"], opt.state[0]["m"])


class TestMasterWeights:
    """Mixed precision: float32 parameters updated through float64 masters."""

    def _step(self, opt, p, grad):
        opt.zero_grad()
        p.grad = np.asarray(grad, dtype=p.data.dtype)
        opt.step()

    def test_sgd_master_keeps_param_dtype(self):
        p = Parameter(np.zeros(4), dtype="float32")
        opt = SGD([p], lr=0.1, momentum=0.9, master_dtype="float64")
        self._step(opt, p, np.ones(4))
        assert p.data.dtype == np.float32
        assert opt.state[0]["master"].dtype == np.float64
        assert opt.state[0]["momentum"].dtype == np.float64

    def test_adam_master_accumulates_below_float32_resolution(self):
        """Master weights must capture updates a float32 weight would drop.

        With w = 1.0 and per-step update ~1e-8 (below float32 eps), 1000
        plain float32 SGD steps leave the weight exactly 1.0; the float64
        master accumulates them.
        """
        def run(master_dtype):
            p = Parameter(np.ones(1), dtype="float32")
            opt = SGD([p], lr=1e-8, master_dtype=master_dtype)
            for _ in range(1000):
                self._step(opt, p, np.ones(1))
            master = opt.state.get(0, {}).get("master")
            return float(master[0]) if master is not None else float(p.data[0])

        assert run(None) == pytest.approx(1.0)  # float32 swallows the updates
        assert run("float64") == pytest.approx(1.0 - 1e-5, rel=1e-6)

    def test_master_state_dict_roundtrip(self):
        p = Parameter(np.full(3, 2.0), dtype="float32")
        opt = Adam([p], lr=0.1, master_dtype="float64")
        self._step(opt, p, np.ones(3))
        state = opt.state_dict()

        p2 = Parameter(np.full(3, 2.0), dtype="float32")
        opt2 = Adam([p2], lr=0.1, master_dtype="float64")
        opt2.load_state_dict(state)
        assert opt2.state[0]["master"].dtype == np.float64
        assert np.array_equal(opt2.state[0]["master"], opt.state[0]["master"])

    def test_load_casts_state_to_param_dtype_without_master(self):
        """Float64 checkpoint state loaded into a float32 run is cast down."""
        p64 = Parameter(np.zeros(2))
        opt64 = Adam([p64], lr=0.1)
        self._step(opt64, p64, np.ones(2))
        state = opt64.state_dict()

        p32 = Parameter(np.zeros(2), dtype="float32")
        opt32 = Adam([p32], lr=0.1)
        opt32.load_state_dict(state)
        assert opt32.state[0]["m"].dtype == np.float32
        self._step(opt32, p32, np.ones(2))
        assert p32.data.dtype == np.float32

    def test_shared_replica_sees_master_updates(self):
        """In-place write-back keeps parameter sharing across replicas intact."""
        storage = np.ones(3, dtype=np.float32)
        p = Parameter(storage.copy(), dtype="float32")
        alias = p.data  # simulated replica sharing the same array
        opt = SGD([p], lr=0.5, master_dtype="float64")
        self._step(opt, p, np.ones(3))
        assert alias is p.data
        assert np.allclose(alias, 0.5)


class TestGradClipping:
    def test_clip_reduces_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_when_below(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        clip_grad_norm([p], max_norm=5.0)
        assert np.allclose(p.grad, 0.1)


class TestSchedulers:
    def _opt(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        opt = self._opt()
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_cosine_annealing_endpoints(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decrease(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=5)
        lrs = [sched.step() for _ in range(5)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup(self):
        opt = self._opt()
        sched = WarmupLR(opt, warmup_epochs=4, target_scale=4.0)
        lrs = [sched.step() for _ in range(5)]
        assert lrs[0] < lrs[1] < lrs[3]
        assert lrs[-1] == pytest.approx(4.0)

    def test_state_dict_roundtrip(self):
        opt = self._opt()
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        state = sched.state_dict()

        opt2 = self._opt()
        sched2 = ExponentialLR(opt2, gamma=0.5)
        sched2.load_state_dict(state)
        assert sched2.last_epoch == 2
        assert opt2.lr == pytest.approx(0.25)
        assert sched2.step() == pytest.approx(0.125)

    def test_load_epoch_zero_restores_base_lr(self):
        """Loading a fresh (epoch-0) snapshot must undo a decayed optimizer lr."""
        opt = self._opt()
        sched = ExponentialLR(opt, gamma=0.5)
        fresh = sched.state_dict()
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)
        sched.load_state_dict(fresh)
        assert opt.lr == pytest.approx(1.0)

    def test_build_scheduler_factory(self):
        opt = self._opt()
        sched = build_scheduler("step", opt, step_size=2, gamma=0.1)
        assert isinstance(sched, StepLR)
        with pytest.raises(ValueError):
            build_scheduler("nope", opt)
        with pytest.raises(TypeError):
            build_scheduler("cosine", opt)  # t_max is required
