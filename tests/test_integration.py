"""End-to-end integration tests crossing module boundaries.

These tests exercise the full paper pipeline (Fig. 3) — simulation → low-res
operator → crop/point sampling → physics-constrained training → continuous
super-resolution → turbulence-metric evaluation — at a miniature scale.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.baselines import TrilinearBaseline, UNetDecoderBaseline
from repro.core import LossWeights, MeshfreeFlowNet, MeshfreeFlowNetConfig, compute_losses
from repro.data import SuperResolutionDataset, downsample_fields
from repro.metrics import evaluate_fields
from repro.optim import Adam
from repro.pde import RayleighBenard2D, divergence_free_system
from repro.simulation import simulate_rayleigh_benard
from repro.training import Trainer, TrainerConfig, evaluate_model, save_checkpoint, load_checkpoint


class TestFullPipeline:
    def test_solver_to_evaluation(self):
        """Real solver data through dataset, training step and metric evaluation."""
        sim = simulate_rayleigh_benard(rayleigh=1e5, nz=8, nx=32, t_final=0.5,
                                       n_snapshots=8, seed=0)
        dataset = SuperResolutionDataset(sim, lr_factors=(2, 2, 4), crop_shape_lr=(2, 4, 8),
                                         n_points=16, samples_per_epoch=4, seed=0)
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(unet_pool_factors=((1, 2, 2),)))
        trainer = Trainer(model, dataset, pde_system=RayleighBenard2D(rayleigh=1e5),
                          config=TrainerConfig(epochs=1, batch_size=1, gamma=0.0125,
                                               steps_per_epoch=1))
        history = trainer.train()
        assert len(history) == 1 and np.isfinite(history[0]["loss"])
        report = trainer.evaluate(label="integration")
        assert len(report.nmae) == 9
        assert all(np.isfinite(v) for v in report.nmae.values())

    def test_training_reduces_loss_and_beats_initialisation(self, tiny_dataset):
        """Fixed-batch overfitting: trained model must beat its own initialisation."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        batch = tiny_dataset.sample_batch([0, 1], epoch=0)
        lowres, coords, targets = Tensor(batch.lowres), Tensor(batch.coords), Tensor(batch.targets)
        initial_error = np.mean(np.abs(model(lowres, coords).data - targets.data))
        optimizer = Adam(model.parameters(), lr=1e-2)
        weights = LossWeights(gamma=0.0)
        for _ in range(15):
            optimizer.zero_grad()
            total, _ = compute_losses(model, lowres, Tensor(batch.coords, requires_grad=True),
                                      targets, None, weights)
            total.backward()
            optimizer.step()
        final_error = np.mean(np.abs(model(lowres, coords).data - targets.data))
        assert final_error < 0.6 * initial_error

    def test_equation_loss_reduces_pde_residual(self, tiny_dataset):
        """Training with only the equation loss must shrink the PDE residual."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        pde = divergence_free_system()
        batch = tiny_dataset.sample_batch([0], epoch=0)
        optimizer = Adam(model.parameters(), lr=1e-2)
        weights = LossWeights(gamma=10.0)   # strongly physics-weighted
        residuals = []
        for _ in range(8):
            optimizer.zero_grad()
            total, breakdown = compute_losses(
                model, Tensor(batch.lowres), Tensor(batch.coords, requires_grad=True),
                Tensor(batch.targets), pde, weights, coord_scales=batch.coord_scales)
            total.backward()
            optimizer.step()
            residuals.append(breakdown.equation)
        assert residuals[-1] < residuals[0]

    @pytest.mark.float64_default
    def test_consistent_prediction_between_interfaces(self, tiny_dataset):
        """predict_grid and forward agree when queried on the same grid points."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        lowres, _, _ = tiny_dataset.evaluation_pair(0)
        lowres_t = Tensor(lowres[None])
        from repro.core.latent_grid import regular_grid_coordinates
        shape = (2, 4, 4)
        dense = model.predict_grid(lowres_t, shape)[0]
        coords = regular_grid_coordinates(shape)[None]
        points = model(lowres_t, Tensor(coords)).data[0]
        assert np.allclose(np.moveaxis(dense.reshape(4, -1).T.reshape(*shape, 4), -1, 0), dense)
        assert np.allclose(points.reshape(*shape, 4), np.moveaxis(dense, 0, -1), atol=1e-10)

    def test_checkpoint_preserves_predictions(self, tmp_path, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=4))
        batch = tiny_dataset.sample_batch([0], epoch=0)
        before = model(Tensor(batch.lowres), Tensor(batch.coords)).data
        save_checkpoint(tmp_path / "m.npz", model)
        restored = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=99))
        load_checkpoint(tmp_path / "m.npz", restored)
        after = restored(Tensor(batch.lowres), Tensor(batch.coords)).data
        assert np.allclose(before, after)

    def test_all_models_share_evaluation_interface(self, tiny_dataset):
        """MeshfreeFlowNet, Baseline I and Baseline II evaluate through the same path."""
        cfg = MeshfreeFlowNetConfig.tiny()
        models = [
            MeshfreeFlowNet(cfg),
            TrilinearBaseline(),
            UNetDecoderBaseline(cfg, upsample_factors=tiny_dataset.lr_factors),
        ]
        for model in models:
            report = evaluate_model(model, tiny_dataset, label=type(model).__name__)
            assert len(report.r2) == 9

    def test_downsample_then_evaluate_is_consistent(self, synthetic_result):
        """L operator + metric evaluation: HR vs HR must be perfect, HR vs LR-upsampled not."""
        hr = synthetic_result.fields
        lr = downsample_fields(hr, (2, 2, 4))
        tri = TrilinearBaseline()
        recon = tri.predict_grid(Tensor(np.moveaxis(lr, 1, 0)[None]), hr.shape[2:] if False else (hr.shape[0], hr.shape[2], hr.shape[3]))[0]
        recon = np.moveaxis(recon, 0, 1)
        _, dz, dx = synthetic_result.grid_spacing()
        perfect = evaluate_fields(hr, hr, dx, dz, nu=1e-3)
        approx = evaluate_fields(recon, hr, dx, dz, nu=1e-3)
        assert perfect.average_r2 == pytest.approx(1.0)
        assert approx.average_r2 < perfect.average_r2

    def test_fully_convolutional_inference_on_larger_domain(self, tiny_dataset):
        """A model trained on small crops encodes the full low-resolution field."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        full_lr, _, _ = tiny_dataset.evaluation_pair(0)   # larger than the training crop
        grid = model.latent_grid(Tensor(full_lr[None]))
        assert grid.shape[2:] == full_lr.shape[1:]
