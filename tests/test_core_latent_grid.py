"""Latent context grid querying: interpolation correctness and differentiability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, grad, ops
from repro.core.latent_grid import (
    query_latent_grid,
    regular_grid_coordinates,
    trilinear_weights_numpy,
)


def identity_decoder(coord_dim=3):
    """A decoder that returns the latent part unchanged (pure trilinear sampling)."""
    return lambda inp: inp[..., coord_dim:]


class TestRegularGridCoordinates:
    def test_shape_and_range(self):
        coords = regular_grid_coordinates((3, 4, 5))
        assert coords.shape == (60, 3)
        assert coords.min() == 0.0 and coords.max() == 1.0

    def test_single_point_axis(self):
        coords = regular_grid_coordinates((1, 2, 2))
        assert np.all(coords[:, 0] == 0.0)

    def test_ordering_matches_reshape(self):
        coords = regular_grid_coordinates((2, 2, 2))
        grid = coords[:, 2].reshape(2, 2, 2)
        assert np.allclose(grid[0, 0], [0.0, 1.0])


class TestTrilinearWeights:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=3, max_size=3))
    def test_partition_of_unity(self, frac):
        w = trilinear_weights_numpy(np.array(frac))
        assert np.sum(w) == pytest.approx(1.0)
        assert np.all(w >= 0)

    def test_corner_exactness(self):
        w = trilinear_weights_numpy(np.array([0.0, 0.0, 0.0]))
        assert w[0] == pytest.approx(1.0)
        w = trilinear_weights_numpy(np.array([1.0, 1.0, 1.0]))
        assert w[-1] == pytest.approx(1.0)


class TestQueryLatentGrid:
    def test_output_shape(self, rng):
        grid = Tensor(rng.standard_normal((2, 5, 3, 4, 4)))
        coords = Tensor(rng.random((2, 7, 3)))
        out = query_latent_grid(grid, coords, identity_decoder())
        assert out.shape == (2, 7, 5)

    def test_exact_at_vertices(self, rng):
        """Querying exactly at grid vertices returns the stored latent vectors."""
        grid_np = rng.standard_normal((1, 4, 3, 3, 3))
        grid = Tensor(grid_np)
        coords_np = regular_grid_coordinates((3, 3, 3))[None]
        out = query_latent_grid(grid, Tensor(coords_np), identity_decoder()).data
        expected = grid_np.transpose(0, 2, 3, 4, 1).reshape(1, -1, 4)
        assert np.allclose(out, expected, atol=1e-12)

    def test_reproduces_trilinear_functions(self, rng):
        """A field linear in each coordinate is reproduced exactly by trilinear blending."""
        nt, nz, nx = 4, 5, 6
        tt, zz, xx = np.meshgrid(np.linspace(0, 1, nt), np.linspace(0, 1, nz),
                                 np.linspace(0, 1, nx), indexing="ij")
        field = 2.0 * tt - 3.0 * zz + 0.5 * xx + 1.0
        grid = Tensor(field[None, None])
        coords_np = rng.random((1, 50, 3))
        out = query_latent_grid(grid, Tensor(coords_np), identity_decoder()).data[0, :, 0]
        expected = (2.0 * coords_np[0, :, 0] - 3.0 * coords_np[0, :, 1]
                    + 0.5 * coords_np[0, :, 2] + 1.0)
        assert np.allclose(out, expected, atol=1e-10)

    def test_nearest_mode_returns_vertex_values(self, rng):
        grid_np = rng.standard_normal((1, 2, 2, 2, 2))
        coords = Tensor(np.array([[[0.1, 0.1, 0.1], [0.9, 0.9, 0.9]]]))
        out = query_latent_grid(Tensor(grid_np), coords, identity_decoder(), interpolation="nearest").data
        assert np.allclose(out[0, 0], grid_np[0, :, 0, 0, 0])
        assert np.allclose(out[0, 1], grid_np[0, :, 1, 1, 1])

    def test_gradient_wrt_coords(self, rng):
        """d(output)/d(coords) matches the analytic slope of a linear field."""
        nt, nz, nx = 3, 3, 3
        tt, zz, xx = np.meshgrid(np.linspace(0, 1, nt), np.linspace(0, 1, nz),
                                 np.linspace(0, 1, nx), indexing="ij")
        field = 4.0 * tt + 2.0 * zz - 1.0 * xx
        grid = Tensor(field[None, None])
        coords = Tensor(rng.random((1, 10, 3)) * 0.8 + 0.1, requires_grad=True)
        out = query_latent_grid(grid, coords, identity_decoder())
        g = grad(ops.sum(out), coords)
        assert np.allclose(g.data[..., 0], 4.0, atol=1e-8)
        assert np.allclose(g.data[..., 1], 2.0, atol=1e-8)
        assert np.allclose(g.data[..., 2], -1.0, atol=1e-8)

    def test_gradient_flows_to_grid(self, rng):
        grid = Tensor(rng.standard_normal((1, 3, 2, 2, 2)), requires_grad=True)
        coords = Tensor(rng.random((1, 5, 3)))
        out = query_latent_grid(grid, coords, identity_decoder())
        g = grad(ops.sum(out), grid)
        assert g is not None and g.shape == grid.shape

    def test_degenerate_single_vertex_axis(self, rng):
        grid = Tensor(rng.standard_normal((1, 2, 1, 3, 3)))
        coords = Tensor(rng.random((1, 6, 3)))
        out = query_latent_grid(grid, coords, identity_decoder())
        assert out.shape == (1, 6, 2)
        assert np.isfinite(out.data).all()

    def test_batch_mismatch_raises(self, rng):
        grid = Tensor(rng.standard_normal((2, 2, 2, 2, 2)))
        coords = Tensor(rng.random((3, 4, 3)))
        with pytest.raises(ValueError):
            query_latent_grid(grid, coords, identity_decoder())

    def test_bad_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            query_latent_grid(Tensor(rng.random((2, 2, 2, 2))), Tensor(rng.random((2, 4, 3))), identity_decoder())
        with pytest.raises(ValueError):
            query_latent_grid(Tensor(rng.random((1, 2, 2, 2, 2))), Tensor(rng.random((1, 4, 2))), identity_decoder())
        with pytest.raises(ValueError):
            query_latent_grid(Tensor(rng.random((1, 2, 2, 2, 2))), Tensor(rng.random((1, 4, 3))),
                              identity_decoder(), interpolation="cubic")

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=4))
    def test_constant_field_reproduced(self, nz, nx):
        """Property: a constant latent grid decodes to that constant everywhere."""
        grid = Tensor(np.full((1, 2, 2, nz, nx), 3.25))
        rng = np.random.default_rng(nz * 10 + nx)
        coords = Tensor(rng.random((1, 20, 3)))
        out = query_latent_grid(grid, coords, identity_decoder()).data
        assert np.allclose(out, 3.25)
