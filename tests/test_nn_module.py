"""Module / Parameter registry, state dicts, train/eval modes."""

import numpy as np
import pytest

from repro import nn
from repro.autodiff import Tensor, ops


class Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(3, 5, rng=np.random.default_rng(0))
        self.fc2 = nn.Linear(5, 2, rng=np.random.default_rng(1))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc2(ops.relu(self.fc1(x)))


class TestModuleRegistry:
    def test_parameters_collected_recursively(self):
        m = Toy()
        names = [n for n, _ in m.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(m.parameters()) == 4

    def test_num_parameters(self):
        m = Toy()
        assert m.num_parameters() == 3 * 5 + 5 + 5 * 2 + 2

    def test_buffers_registered(self):
        m = Toy()
        assert "counter" in dict(m.named_buffers())

    def test_modules_iteration(self):
        m = Toy()
        assert len(list(m.modules())) == 3  # Toy, fc1, fc2

    def test_train_eval_propagates(self):
        m = Toy()
        m.eval()
        assert not m.fc1.training
        m.train()
        assert m.fc2.training

    def test_zero_grad(self):
        m = Toy()
        x = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
        ops.sum(m(x)).backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip(self):
        m1, m2 = Toy(), Toy()
        m2.fc1.weight.data += 1.0  # make them differ
        state = m1.state_dict()
        m2.load_state_dict(state)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            assert np.allclose(p1.data, p2.data)

    def test_state_dict_contains_buffers(self):
        m = Toy()
        assert "counter" in m.state_dict()

    def test_load_buffer_value(self):
        m1, m2 = Toy(), Toy()
        m1.counter[...] = 7.0
        m2.load_state_dict(m1.state_dict())
        assert m2._buffers["counter"][0] == 7.0

    def test_shape_mismatch_raises(self):
        m = Toy()
        state = m.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_buffer_shape_mismatch_raises(self):
        """A broadcastable but wrong-shape buffer must not load silently."""
        m = Toy()
        state = m.state_dict()
        state["counter"] = np.asarray(7.0)  # shape () broadcasts into shape (1,)
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_failed_load_mutates_nothing(self):
        """Validation runs before any write: a rejected load leaves the module intact."""
        m = Toy()
        before = m.state_dict()
        bad = m.state_dict()
        bad["fc1.weight"] = bad["fc1.weight"] + 1.0
        bad["fc2.bias"] = np.zeros((3, 3))  # shape mismatch triggers rejection
        with pytest.raises(ValueError):
            m.load_state_dict(bad)
        for key, value in m.state_dict().items():
            assert np.array_equal(value, before[key])

        missing = dict(before)
        missing["fc1.weight"] = before["fc1.weight"] + 1.0
        del missing["counter"]  # strict missing-key rejection
        with pytest.raises(KeyError):
            m.load_state_dict(missing)
        assert np.array_equal(m.fc1.weight.data, before["fc1.weight"])

    def test_unexpected_key_raises_when_strict(self):
        m = Toy()
        state = m.state_dict()
        state["does.not.exist"] = np.zeros(3)
        with pytest.raises(KeyError):
            m.load_state_dict(state)
        m.load_state_dict(state, strict=False)  # silently ignored

    def test_state_dict_is_a_copy(self):
        m = Toy()
        state = m.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.allclose(m.fc1.weight.data, 99.0)


class TestForwardCall:
    def test_call_invokes_forward(self):
        m = Toy()
        x = Tensor(np.zeros((2, 3)))
        out = m(x)
        assert out.shape == (2, 2)

    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            nn.Module().forward()
