"""Tests for the first-order NN primitives: conv3d, pooling, upsampling."""

import numpy as np
import pytest

from repro.autodiff import Tensor, avg_pool3d, conv3d, gradcheck, max_pool3d, ops, upsample_nearest3d


def t(arr):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=True)


class TestConv3d:
    def test_output_shape_no_padding(self, rng):
        x = t(rng.standard_normal((2, 3, 4, 6, 6)))
        w = t(rng.standard_normal((5, 3, 3, 3, 3)))
        out = conv3d(x, w)
        assert out.shape == (2, 5, 2, 4, 4)

    def test_output_shape_padding_stride(self, rng):
        x = t(rng.standard_normal((1, 2, 4, 8, 8)))
        w = t(rng.standard_normal((4, 2, 3, 3, 3)))
        assert conv3d(x, w, padding=1).shape == (1, 4, 4, 8, 8)
        assert conv3d(x, w, stride=2, padding=1).shape == (1, 4, 2, 4, 4)

    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 1, 3, 3, 3))
        w = np.zeros((1, 1, 1, 1, 1))
        w[0, 0, 0, 0, 0] = 1.0
        out = conv3d(t(x), t(w))
        assert np.allclose(out.data, x)

    def test_matches_direct_convolution(self, rng):
        x = rng.standard_normal((1, 2, 3, 4, 4))
        w = rng.standard_normal((3, 2, 2, 2, 2))
        out = conv3d(t(x), t(w)).data
        # brute-force reference
        ref = np.zeros((1, 3, 2, 3, 3))
        for co in range(3):
            for dd in range(2):
                for hh in range(3):
                    for ww_ in range(3):
                        patch = x[0, :, dd:dd+2, hh:hh+2, ww_:ww_+2]
                        ref[0, co, dd, hh, ww_] = np.sum(patch * w[co])
        assert np.allclose(out, ref)

    def test_channel_mismatch_raises(self, rng):
        x = t(rng.standard_normal((1, 3, 4, 4, 4)))
        w = t(rng.standard_normal((2, 4, 3, 3, 3)))
        with pytest.raises(ValueError):
            conv3d(x, w)

    def test_gradcheck(self, rng):
        x = t(rng.standard_normal((2, 2, 3, 4, 4)) * 0.5)
        w = t(rng.standard_normal((3, 2, 3, 3, 3)) * 0.5)
        assert gradcheck(lambda a, b: ops.sum(ops.square(conv3d(a, b, padding=1))), [x, w], atol=1e-4)

    def test_gradcheck_strided(self, rng):
        x = t(rng.standard_normal((1, 2, 4, 4, 4)) * 0.5)
        w = t(rng.standard_normal((2, 2, 2, 2, 2)) * 0.5)
        assert gradcheck(lambda a, b: ops.sum(conv3d(a, b, stride=2)), [x, w], atol=1e-4)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 2, 2, 4)
        out = max_pool3d(Tensor(x), (2, 2, 2))
        assert out.shape == (1, 1, 1, 1, 2)
        assert np.allclose(out.data.ravel(), [13.0, 15.0])

    def test_max_pool_anisotropic_kernel(self, rng):
        x = t(rng.standard_normal((2, 3, 4, 8, 8)))
        out = max_pool3d(x, (1, 2, 2))
        assert out.shape == (2, 3, 4, 4, 4)

    def test_max_pool_divisibility_error(self, rng):
        with pytest.raises(ValueError):
            max_pool3d(t(rng.standard_normal((1, 1, 3, 4, 4))), (2, 2, 2))

    def test_max_pool_gradcheck(self, rng):
        x = t(rng.standard_normal((1, 2, 2, 4, 4)))
        assert gradcheck(lambda a: ops.sum(max_pool3d(a, (2, 2, 2))), [x])

    def test_avg_pool_values(self):
        x = np.ones((1, 1, 2, 2, 2)) * 3.0
        assert np.allclose(avg_pool3d(Tensor(x), 2).data, 3.0)

    def test_avg_pool_gradcheck(self, rng):
        x = t(rng.standard_normal((1, 2, 4, 4, 2)))
        assert gradcheck(lambda a: ops.sum(ops.square(avg_pool3d(a, (2, 2, 2)))), [x])

    def test_max_then_upsample_shapes(self, rng):
        x = t(rng.standard_normal((1, 2, 4, 4, 4)))
        down = max_pool3d(x, 2)
        up = upsample_nearest3d(down, 2)
        assert up.shape == x.shape


class TestUpsample:
    def test_values_repeat(self):
        x = np.arange(4.0).reshape(1, 1, 1, 2, 2)
        out = upsample_nearest3d(Tensor(x), (1, 2, 2)).data
        assert out.shape == (1, 1, 1, 4, 4)
        assert np.allclose(out[0, 0, 0, :2, :2], 0.0)
        assert np.allclose(out[0, 0, 0, 2:, 2:], 3.0)

    def test_gradcheck(self, rng):
        x = t(rng.standard_normal((1, 2, 2, 3, 2)))
        assert gradcheck(lambda a: ops.sum(ops.square(upsample_nearest3d(a, (2, 1, 2)))), [x])

    def test_upsample_then_avgpool_is_identity(self, rng):
        x = rng.standard_normal((1, 3, 2, 2, 2))
        up = upsample_nearest3d(Tensor(x), 2)
        back = avg_pool3d(up, 2)
        assert np.allclose(back.data, x)
