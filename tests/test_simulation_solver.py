"""Rayleigh–Bénard solver: stability, physics sanity checks, result containers."""

import numpy as np
import pytest

from repro.simulation import (
    RayleighBenardConfig,
    RayleighBenardSolver,
    SimulationResult,
    manufactured_solution,
    simulate_rayleigh_benard,
    synthetic_convection,
)
from repro.simulation.datasets import DatasetSpec, generate_dataset, generate_ensemble, generate_rayleigh_sweep


@pytest.fixture(scope="module")
def short_run():
    """A short real solver run shared by several tests."""
    cfg = RayleighBenardConfig(rayleigh=1e5, nz=16, nx=32, t_final=1.0, n_snapshots=5, seed=2)
    solver = RayleighBenardSolver(cfg)
    result = solver.run()
    return solver, result


class TestConfigValidation:
    def test_invalid_rayleigh(self):
        with pytest.raises(ValueError):
            RayleighBenardConfig(rayleigh=-1)

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            RayleighBenardConfig(nz=2)

    def test_invalid_cfl(self):
        with pytest.raises(ValueError):
            RayleighBenardConfig(cfl=1.5)

    def test_star_numbers(self):
        cfg = RayleighBenardConfig(rayleigh=1e6, prandtl=1.0)
        assert cfg.p_star == pytest.approx(1e-3)
        assert cfg.r_star == pytest.approx(1e-3)
        assert cfg.lx == pytest.approx(4.0)


class TestSolverBehaviour:
    def test_result_shapes(self, short_run):
        _, result = short_run
        assert result.fields.shape == (5, 4, 16, 32)
        assert result.times.shape == (5,)
        assert np.all(np.diff(result.times) > 0)

    def test_fields_finite(self, short_run):
        _, result = short_run
        assert np.isfinite(result.fields).all()

    def test_temperature_stays_bounded(self, short_run):
        """Advection-diffusion of T must approximately respect the maximum principle."""
        _, result = short_run
        temp = result.channel("T")
        assert temp.max() < 1.2 and temp.min() > -0.2

    def test_convection_develops_kinetic_energy(self):
        """Above the critical Rayleigh number the perturbation must grow into motion."""
        result = simulate_rayleigh_benard(rayleigh=1e6, nz=16, nx=64, t_final=4.0,
                                          n_snapshots=8, seed=3)
        ke_start = 0.5 * np.mean(result.fields[0, 2] ** 2 + result.fields[0, 3] ** 2)
        ke_end = 0.5 * np.mean(result.fields[-1, 2] ** 2 + result.fields[-1, 3] ** 2)
        assert ke_end > ke_start

    def test_interior_divergence_small(self, short_run):
        """The projection keeps the interior flow nearly divergence free.

        (The collocated-grid scheme leaves a known, localised divergence error
        in the first cells next to the walls — see the solver docstring.)
        """
        solver, _ = short_run
        div = solver.divergence()
        interior = np.abs(div[3:-3])
        grad_scale = max(np.abs(solver.u).max() / solver.dx, np.abs(solver.w).max() / solver.dz, 1e-12)
        assert interior.max() <= 0.2 * grad_scale + 1e-10

    def test_nusselt_number_at_least_conductive(self, short_run):
        solver, _ = short_run
        assert solver.nusselt_number() > 0.5

    def test_adaptive_dt_positive_and_bounded(self, short_run):
        solver, _ = short_run
        dt = solver.compute_dt()
        assert 0 < dt <= solver.config.dt_max

    def test_step_advances_time(self):
        solver = RayleighBenardSolver(RayleighBenardConfig(nz=8, nx=16, t_final=1.0, seed=0))
        t0 = solver.time
        solver.step()
        assert solver.time > t0
        assert solver.iteration == 1

    def test_seed_reproducibility(self):
        cfg = dict(rayleigh=1e5, nz=8, nx=16, t_final=0.2, n_snapshots=3)
        r1 = simulate_rayleigh_benard(seed=5, **cfg)
        r2 = simulate_rayleigh_benard(seed=5, **cfg)
        assert np.allclose(r1.fields, r2.fields)

    def test_different_seeds_differ(self):
        cfg = dict(rayleigh=1e6, nz=8, nx=16, t_final=1.0, n_snapshots=3)
        r1 = simulate_rayleigh_benard(seed=1, **cfg)
        r2 = simulate_rayleigh_benard(seed=2, **cfg)
        assert not np.allclose(r1.fields, r2.fields)


class TestSimulationResult:
    def test_channel_access(self, synthetic_result):
        assert synthetic_result.channel("T").shape == (16, 16, 64)
        with pytest.raises(KeyError):
            synthetic_result.channel("vorticity")

    def test_snapshot(self, synthetic_result):
        snap = synthetic_result.snapshot(0)
        assert set(snap) == {"p", "T", "u", "w"}

    def test_grid_spacing_and_extent(self, synthetic_result):
        dt, dz, dx = synthetic_result.grid_spacing()
        assert dz == pytest.approx(synthetic_result.lz / synthetic_result.nz)
        assert dx == pytest.approx(synthetic_result.lx / synthetic_result.nx)
        assert synthetic_result.extent()[0] == pytest.approx(synthetic_result.duration)

    def test_subsample(self, synthetic_result):
        sub = synthetic_result.subsample(2, 2, 4)
        assert sub.fields.shape == (8, 4, 8, 16)

    def test_save_load_roundtrip(self, synthetic_result, tmp_path):
        path = tmp_path / "result.npz"
        synthetic_result.save(path)
        loaded = SimulationResult.load(path)
        assert np.allclose(loaded.fields, synthetic_result.fields)
        assert loaded.rayleigh == synthetic_result.rayleigh

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            SimulationResult(fields=np.zeros((4, 3, 8, 8)), times=np.zeros(4),
                             lx=4, lz=1, rayleigh=1e6, prandtl=1)

    def test_times_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SimulationResult(fields=np.zeros((4, 4, 8, 8)), times=np.zeros(3),
                             lx=4, lz=1, rayleigh=1e6, prandtl=1)


class TestSyntheticGenerators:
    def test_synthetic_divergence_free(self):
        sim = synthetic_convection(nt=4, nz=32, nx=128, seed=1)
        u, w = sim.fields[0, 2], sim.fields[0, 3]
        dx = sim.lx / sim.nx
        k = 2 * np.pi * np.fft.rfftfreq(sim.nx, d=dx)
        dudx = np.fft.irfft(1j * k * np.fft.rfft(u, axis=1), n=sim.nx, axis=1)
        dwdz = np.gradient(w, sim.lz / sim.nz, axis=0)
        div = dudx + dwdz
        scale = max(np.abs(dudx).max(), np.abs(dwdz).max())
        assert np.abs(div)[2:-2].max() < 0.15 * scale

    def test_synthetic_deterministic(self):
        a = synthetic_convection(nt=4, nz=8, nx=16, seed=9)
        b = synthetic_convection(nt=4, nz=8, nx=16, seed=9)
        assert np.allclose(a.fields, b.fields)

    def test_synthetic_config_conflict(self):
        from repro.simulation import SyntheticConfig
        with pytest.raises(TypeError):
            synthetic_convection(SyntheticConfig(), nt=4)

    def test_manufactured_solution_shapes(self):
        sim = manufactured_solution(nt=3, nz=8, nx=16)
        assert sim.fields.shape == (3, 4, 8, 16)


class TestDatasetGeneration:
    def test_generate_dataset_synthetic(self):
        spec = DatasetSpec(nt=4, nz=8, nx=16, backend="synthetic", seed=1)
        result = generate_dataset(spec)
        assert result.shape == (4, 8, 16)

    def test_generate_dataset_solver(self):
        spec = DatasetSpec(nt=3, nz=8, nx=16, t_final=0.2, backend="solver", seed=1)
        result = generate_dataset(spec)
        assert result.shape == (3, 8, 16)

    def test_invalid_backend(self):
        with pytest.raises(ValueError):
            DatasetSpec(backend="dedalus")

    def test_ensemble_distinct_seeds(self):
        base = DatasetSpec(nt=3, nz=8, nx=16, backend="synthetic")
        results = generate_ensemble(base, seeds=[1, 2, 3])
        assert len(results) == 3
        assert not np.allclose(results[0].fields, results[1].fields)

    def test_rayleigh_sweep_sets_parameters(self):
        base = DatasetSpec(nt=3, nz=8, nx=16, backend="synthetic")
        results = generate_rayleigh_sweep(base, [1e4, 1e6])
        assert [r.rayleigh for r in results] == [1e4, 1e6]
