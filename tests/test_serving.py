"""Serving subsystem: requests, scheduler, coalescing exactness, server, HTTP."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.inference import InferenceEngine
from repro.serving import (
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchPolicy,
    Client,
    MicroBatchScheduler,
    ModelServer,
    QueryRequest,
    QueryResult,
    SchedulerClosedError,
    ServerOverloadedError,
    ServerTelemetry,
    format_stats_table,
    start_http_server,
    stop_http_server,
)


@pytest.fixture(scope="module")
def model():
    """Eval-mode tiny model shared by all serving tests (read-only)."""
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()


@pytest.fixture(scope="module")
def domain():
    """A (1, 4, 4, 16, 16) low-resolution domain."""
    rng = np.random.default_rng(7)
    return rng.standard_normal((1, 4, 4, 16, 16))


@pytest.fixture(scope="module")
def big_domain():
    """A (1, 4, 4, 24, 40) domain large enough for multi-tile layouts."""
    rng = np.random.default_rng(8)
    return rng.standard_normal((1, 4, 4, 24, 40))


def make_server(model, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("policy", BatchPolicy(max_wait=0.002))
    return ModelServer(model, **kwargs)


# --------------------------------------------------------------------------- #
# Request / result dataclasses                                                #
# --------------------------------------------------------------------------- #
class TestQueryRequest:
    def test_point_request(self):
        request = QueryRequest("d", coords=[[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])
        assert not request.is_grid and request.n_points == 2
        assert request.coords.dtype == np.float64
        assert request.request_id.startswith("req-")

    def test_grid_request(self):
        request = QueryRequest("d", output_shape=(2, 4, 8))
        assert request.is_grid and request.n_points == 64

    def test_exactly_one_payload(self):
        with pytest.raises(ValueError):
            QueryRequest("d")
        with pytest.raises(ValueError):
            QueryRequest("d", coords=np.zeros((1, 3)), output_shape=(1, 1, 1))

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            QueryRequest("d", coords=np.zeros((3, 2)))
        with pytest.raises(ValueError):
            QueryRequest("d", coords=np.zeros((0, 3)))
        with pytest.raises(ValueError):
            QueryRequest("d", output_shape=(1, 2))
        with pytest.raises(ValueError):
            QueryRequest("d", output_shape=(0, 2, 2))

    def test_deadline_helpers(self):
        request = QueryRequest("d", coords=np.zeros((1, 3)))
        assert not request.expired()
        request.with_timeout(1e-9)
        time.sleep(0.002)
        assert request.expired()
        assert QueryRequest("d", coords=np.zeros((1, 3))).with_timeout(None).deadline is None

    def test_result_raise_for_status(self):
        ok = QueryResult(request_id="r", status=STATUS_OK)
        assert ok.ok and ok.raise_for_status() is ok
        with pytest.raises(RuntimeError, match="timeout"):
            QueryResult(request_id="r", status=STATUS_TIMEOUT).raise_for_status()


# --------------------------------------------------------------------------- #
# Micro-batching scheduler                                                    #
# --------------------------------------------------------------------------- #
class TestScheduler:
    def coords(self, n=4):
        return np.random.default_rng(0).random((n, 3))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_requests=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_points=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_wait=-1.0)

    def test_priority_order(self):
        scheduler = MicroBatchScheduler(BatchPolicy(max_requests=1, max_wait=0.0))
        for priority in (0, 5, 1):
            scheduler.submit(QueryRequest("d", coords=self.coords(), priority=priority))
        drained = [scheduler.next_batch()[0].request.priority for _ in range(3)]
        assert drained == [5, 1, 0]

    def test_fifo_within_priority(self):
        scheduler = MicroBatchScheduler(BatchPolicy(max_requests=8, max_wait=0.0))
        ids = [scheduler.submit(QueryRequest("d", coords=self.coords())) and None
               for _ in range(3)]
        assert ids == [None, None, None]
        batch = scheduler.next_batch()
        seqs = [item.seq for item in batch]
        assert seqs == sorted(seqs)

    def test_max_requests_bound(self):
        scheduler = MicroBatchScheduler(BatchPolicy(max_requests=2, max_wait=0.0))
        for _ in range(5):
            scheduler.submit(QueryRequest("d", coords=self.coords()))
        assert len(scheduler.next_batch()) == 2
        assert len(scheduler) == 3

    def test_max_points_bound(self):
        scheduler = MicroBatchScheduler(BatchPolicy(max_points=10, max_wait=0.0))
        for _ in range(3):
            scheduler.submit(QueryRequest("d", coords=self.coords(4)))
        # 4 + 4 fits the 10-point budget; the third request would exceed it.
        assert len(scheduler.next_batch()) == 2
        # A single oversized request still forms a batch alone.
        scheduler.submit(QueryRequest("d", coords=self.coords(64)))
        scheduler.next_batch()  # drain the leftover small request
        assert len(scheduler.next_batch()) == 1

    def test_linger_collects_late_arrivals(self):
        scheduler = MicroBatchScheduler(BatchPolicy(max_requests=4, max_wait=0.25))
        scheduler.submit(QueryRequest("d", coords=self.coords()))

        def late_submit():
            time.sleep(0.02)
            scheduler.submit(QueryRequest("d", coords=self.coords()))

        thread = threading.Thread(target=late_submit)
        thread.start()
        batch = scheduler.next_batch()
        thread.join()
        assert len(batch) == 2  # the linger window caught the late request

    def test_backpressure_and_close(self):
        scheduler = MicroBatchScheduler(BatchPolicy(), max_pending=1)
        scheduler.submit(QueryRequest("d", coords=self.coords()))
        with pytest.raises(ServerOverloadedError):
            scheduler.submit(QueryRequest("d", coords=self.coords()))
        scheduler.close()
        assert scheduler.closed
        with pytest.raises(SchedulerClosedError):
            scheduler.submit(QueryRequest("d", coords=self.coords()))
        # Queued work is still drained, then the exit signal follows.
        assert len(scheduler.next_batch()) == 1
        assert scheduler.next_batch() is None

    def test_empty_timeout_returns_empty_list(self):
        scheduler = MicroBatchScheduler()
        assert scheduler.next_batch(timeout=0.01) == []


# --------------------------------------------------------------------------- #
# Coalescing exactness: server results == direct engine results               #
# --------------------------------------------------------------------------- #
class TestCoalescingExactness:
    def test_concurrent_point_queries_bit_identical(self, model, domain):
        """8 clients' coalesced point queries equal solo engine calls exactly."""
        engine = InferenceEngine(model)
        rng = np.random.default_rng(1)
        point_sets = [rng.random((15, 3)) for _ in range(8)]
        expected = [engine.query_points(domain, coords) for coords in point_sets]
        with make_server(model) as server:
            server.register_domain("dom", domain)
            futures = [server.submit(QueryRequest("dom", coords=c)) for c in point_sets]
            results = [f.result(timeout=60) for f in futures]
        for result, want in zip(results, expected):
            assert result.status == STATUS_OK
            assert np.array_equal(result.values, want)

    def test_tiled_mode_coalescing_bit_identical(self, model, big_domain):
        """Cross-request coalescing stays exact with a multi-tile layout."""
        engine = InferenceEngine(model, tile_shape=(4, 16, 16))
        rng = np.random.default_rng(2)
        point_sets = [rng.random((11, 3)) for _ in range(6)]
        expected = [engine.query_points(big_domain, coords) for coords in point_sets]
        with make_server(model, tile_shape=(4, 16, 16)) as server:
            server.register_domain("dom", big_domain)
            futures = [server.submit(QueryRequest("dom", coords=c)) for c in point_sets]
            for future, want in zip(futures, expected):
                assert np.array_equal(future.result(timeout=60).values, want)

    def test_grid_request_bit_identical(self, model, domain):
        engine = InferenceEngine(model)
        expected = engine.predict_grid(domain, (4, 16, 16))
        with make_server(model) as server:
            server.register_domain("dom", domain)
            result = server.query(QueryRequest("dom", output_shape=(4, 16, 16)))
        assert result.status == STATUS_OK
        assert np.array_equal(result.values, expected)

    def test_mixed_domains_in_one_batch(self, model, domain):
        """Requests against different domains in one batch stay separated."""
        other = domain + 1.0
        engine = InferenceEngine(model)
        coords = np.random.default_rng(3).random((9, 3))
        want_a = engine.query_points(domain, coords)
        want_b = engine.query_points(other, coords)
        assert not np.array_equal(want_a, want_b)
        with make_server(model) as server:
            server.register_domain("a", domain)
            server.register_domain("b", other)
            fut_a = server.submit(QueryRequest("a", coords=coords))
            fut_b = server.submit(QueryRequest("b", coords=coords))
            assert np.array_equal(fut_a.result(60).values, want_a)
            assert np.array_equal(fut_b.result(60).values, want_b)


# --------------------------------------------------------------------------- #
# Server lifecycle, errors, backpressure, async front end                     #
# --------------------------------------------------------------------------- #
class TestModelServer:
    def test_unknown_domain_is_error_result(self, model, domain):
        with make_server(model) as server:
            result = server.query(QueryRequest("nope", coords=np.random.random((3, 3))))
        assert result.status == STATUS_ERROR and "unknown domain" in result.error

    def test_register_domain_validation(self, model):
        with make_server(model) as server:
            with pytest.raises(ValueError):
                server.register_domain("bad", np.zeros((4, 4, 4)))

    def test_reregister_invalidates_cached_latents(self, model, domain):
        """Re-registering a domain id must not serve stale latents."""
        coords = np.random.default_rng(4).random((6, 3))
        engine = InferenceEngine(model)
        with make_server(model) as server:
            server.register_domain("dom", domain)
            first = server.query(QueryRequest("dom", coords=coords))
            changed = domain * 2.0
            server.register_domain("dom", changed)
            second = server.query(QueryRequest("dom", coords=coords))
        assert np.array_equal(first.values, engine.query_points(domain, coords))
        assert np.array_equal(second.values, engine.query_points(changed, coords))

    def test_submit_does_not_mutate_caller_request(self, model, domain):
        """A timeout is applied to a copy; the caller's request stays reusable."""
        with make_server(model) as server:
            server.register_domain("dom", domain)
            request = QueryRequest("dom", coords=np.random.random((3, 3)))
            first = server.query(request, timeout=30.0)
            assert request.deadline is None  # caller object untouched
            second = server.query(request)   # resubmit without timeout
        assert first.status == STATUS_OK and second.status == STATUS_OK

    def test_reregister_bumps_cache_generation(self, model, domain):
        """New registrations use new cache keys, immune to in-flight encodes."""
        with make_server(model) as server:
            server.register_domain("dom", domain)
            _, key_before = server._resolve_domain("dom")
            server.register_domain("dom", domain * 2.0)
            _, key_after = server._resolve_domain("dom")
        assert key_before != key_after

    def test_reregister_tolerates_anonymous_cache_keys(self, model, domain):
        """Direct engine use leaves non-named cache keys; invalidation survives."""
        with make_server(model, n_workers=1) as server:
            server.engines[0].query_points(domain, np.random.random((3, 3)))
            server.register_domain("dom", domain)
            server.register_domain("dom", domain * 2.0)  # must not raise

    def test_expired_deadline_times_out_without_decoding(self, model, domain):
        with make_server(model) as server:
            server.register_domain("dom", domain)
            request = QueryRequest("dom", coords=np.random.random((4, 3)),
                                   deadline=time.monotonic() - 1.0)
            result = server.submit(request).result(timeout=60)
        assert result.status == STATUS_TIMEOUT and result.values is None

    def test_submit_async_front_end(self, model, domain):
        engine = InferenceEngine(model)
        coords = np.random.default_rng(5).random((8, 3))
        expected = engine.query_points(domain, coords)

        async def main(server):
            results = await asyncio.gather(*[
                server.submit_async(QueryRequest("dom", coords=coords))
                for _ in range(4)
            ])
            return results

        with make_server(model) as server:
            server.register_domain("dom", domain)
            results = asyncio.run(main(server))
        assert all(np.array_equal(r.values, expected) for r in results)

    def test_backpressure_rejects_and_counts(self, model, domain):
        # One-worker server with a tiny queue and slow-ish grid requests.
        server = ModelServer(model, n_workers=1, max_pending=2,
                             policy=BatchPolicy(max_requests=1, max_wait=0.0))
        try:
            server.register_domain("dom", domain)
            rejected = 0
            futures = []
            for _ in range(40):
                try:
                    futures.append(server.submit(
                        QueryRequest("dom", output_shape=(4, 16, 16))))
                except ServerOverloadedError:
                    rejected += 1
            assert rejected > 0
            assert server.stats()["rejected"] == rejected
            for future in futures:
                assert future.result(timeout=120).status == STATUS_OK
        finally:
            server.close()

    def test_graceful_shutdown_drains_queue(self, model, domain):
        server = make_server(model)
        server.register_domain("dom", domain)
        futures = [server.submit(QueryRequest("dom", coords=np.random.random((5, 3))))
                   for _ in range(12)]
        server.close(drain=True)
        assert all(f.result(timeout=1).status == STATUS_OK for f in futures)
        with pytest.raises(SchedulerClosedError):
            server.submit(QueryRequest("dom", coords=np.random.random((2, 3))))

    def test_close_without_drain_cancels_pending(self, model, domain):
        server = ModelServer(model, n_workers=1,
                             policy=BatchPolicy(max_requests=1, max_wait=0.0))
        server.register_domain("dom", domain)
        futures = [server.submit(QueryRequest("dom", output_shape=(4, 16, 16)))
                   for _ in range(10)]
        server.close(drain=False)
        statuses = set()
        for future in futures:
            if future.cancelled():
                statuses.add(STATUS_CANCELLED)
            else:
                statuses.add(future.result(timeout=60).status)
        assert statuses <= {STATUS_OK, STATUS_CANCELLED}
        assert STATUS_CANCELLED in statuses  # at least the tail was cancelled
        assert server.stats()["cancelled"] > 0  # counted in the telemetry

    def test_stats_snapshot_shape(self, model, domain):
        with make_server(model) as server:
            server.register_domain("dom", domain)
            server.query(QueryRequest("dom", coords=np.random.random((4, 3))))
            stats = server.stats()
        for key in ("accepted", "completed", "queue_depth", "cache_hit_rate",
                    "latency_p50", "latency_p95", "latency_p99",
                    "requests_per_second", "points_per_second", "requests_per_batch"):
            assert key in stats
        assert stats["completed"] == 1 and stats["accepted"] == 1
        table = format_stats_table(stats)
        assert "latency_p99" in table and "completed" in table

    def test_n_workers_validation(self, model):
        with pytest.raises(ValueError):
            ModelServer(model, n_workers=0)


# --------------------------------------------------------------------------- #
# Telemetry unit behaviour                                                    #
# --------------------------------------------------------------------------- #
class TestTelemetry:
    def test_counters_and_percentiles(self):
        telemetry = ServerTelemetry(window=16)
        telemetry.record_admission(True)
        telemetry.record_admission(False)
        telemetry.record_batch(n_requests=3, n_points=30)
        for seconds in (0.001, 0.002, 0.003):
            telemetry.record_result(QueryResult(
                request_id="r", status=STATUS_OK,
                queue_seconds=0.0005, service_seconds=seconds))
        telemetry.record_result(QueryResult(request_id="r", status=STATUS_TIMEOUT))
        snap = telemetry.snapshot(queue_depth=2)
        assert snap["accepted"] == 1 and snap["rejected"] == 1
        assert snap["completed"] == 3 and snap["timed_out"] == 1
        assert snap["requests_per_batch"] == 3.0
        assert snap["coalesced_requests"] == 3
        assert snap["queue_depth"] == 2
        assert snap["latency_p50"] > 0.0


# --------------------------------------------------------------------------- #
# HTTP gateway + synchronous client                                           #
# --------------------------------------------------------------------------- #
class TestHTTPGateway:
    @pytest.fixture()
    def serving_stack(self, model, domain):
        server = make_server(model)
        server.register_domain("dom", domain)
        httpd = start_http_server(server)
        client = Client(port=httpd.server_address[1])
        yield server, client
        stop_http_server(httpd)
        server.close()

    def test_point_query_round_trip_exact(self, serving_stack, model, domain):
        server, client = serving_stack
        coords = np.random.default_rng(6).random((7, 3))
        expected = InferenceEngine(model).query_points(domain, coords)
        result = client.query_points("dom", coords)
        assert result.status == STATUS_OK
        # JSON float serialisation is shortest-round-trip: bit-identical.
        assert np.array_equal(result.values, expected)
        assert result.values.shape == expected.shape

    def test_grid_query_round_trip_exact(self, serving_stack, model, domain):
        _, client = serving_stack
        expected = InferenceEngine(model).predict_grid(domain, (4, 16, 16))
        result = client.predict_grid("dom", (4, 16, 16))
        assert np.array_equal(result.values, expected)

    def test_health_and_stats(self, serving_stack):
        _, client = serving_stack
        health = client.health()
        assert health["status"] == "ok" and health["domains"] == ["dom"]
        assert "latency_p99" in client.stats()

    def test_unknown_domain_surfaces_error_status(self, serving_stack):
        _, client = serving_stack
        result = client.query_points("missing", np.random.random((2, 3)))
        assert result.status == STATUS_ERROR

    def test_bad_request_raises(self, serving_stack):
        _, client = serving_stack
        with pytest.raises(RuntimeError, match="400|bad request"):
            client._call("POST", "/query", {"domain_id": "dom"})  # no payload
        with pytest.raises(RuntimeError, match="400|bad request"):
            client._call("POST", "/query", {"domain_id": "dom",
                                            "coords": [[0.1, 0.2, 0.3]],
                                            "timeout": "not-a-number"})
        with pytest.raises(RuntimeError, match="404|unknown path"):
            client._call("GET", "/nope")
