"""Baseline models: trilinear interpolation and U-Net + convolutional decoder."""

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.baselines import TrilinearBaseline, UNetDecoderBaseline, decompose_upsample_factors
from repro.core import MeshfreeFlowNetConfig


class TestTrilinearBaseline:
    def test_forward_shape(self, rng):
        model = TrilinearBaseline()
        lowres = Tensor(rng.standard_normal((2, 4, 3, 4, 4)))
        coords = Tensor(rng.random((2, 10, 3)))
        out = model(lowres, coords)
        assert out.shape == (2, 10, 4)

    def test_predict_grid_shape(self, rng):
        model = TrilinearBaseline()
        lowres = Tensor(rng.standard_normal((1, 4, 2, 4, 4)))
        out = model.predict_grid(lowres, (4, 8, 8))
        assert out.shape == (1, 4, 4, 8, 8)

    def test_exact_on_trilinear_field(self):
        """Trilinear upsampling of a multilinear field is exact — Baseline I's best case."""
        nt, nz, nx = 3, 4, 5
        tt, zz, xx = np.meshgrid(np.linspace(0, 1, nt), np.linspace(0, 1, nz),
                                 np.linspace(0, 1, nx), indexing="ij")
        field = (tt + 2 * zz - xx)[None, None]
        model = TrilinearBaseline()
        up = model.predict_grid(Tensor(field), (2 * nt - 1, 2 * nz - 1, 2 * nx - 1))[0, 0]
        t2, z2, x2 = np.meshgrid(np.linspace(0, 1, 2 * nt - 1), np.linspace(0, 1, 2 * nz - 1),
                                 np.linspace(0, 1, 2 * nx - 1), indexing="ij")
        assert np.allclose(up, t2 + 2 * z2 - x2, atol=1e-12)

    def test_interface_compat(self):
        model = TrilinearBaseline()
        assert model.parameters() == []
        assert model.eval() is model
        assert model.train() is model

    def test_cannot_recover_fine_scales(self):
        """Downsampling then trilinear upsampling loses high-frequency content."""
        x = np.linspace(0, 2 * np.pi, 33)
        fine = np.sin(8 * x)[None, None, None, None, :].repeat(4, axis=3)  # (1, 1, 1, 4, 33)
        coarse = fine[:, :, :, :, ::8]
        model = TrilinearBaseline()
        recon = model.predict_grid(Tensor(coarse), (1, 4, 33))[0]
        error = np.abs(recon - fine[0]).mean()
        assert error > 0.3  # the 8x-undersampled sine cannot be recovered by interpolation


class TestDecomposeFactors:
    def test_paper_factors(self):
        assert decompose_upsample_factors((4, 8, 8)) == [(1, 2, 2), (2, 2, 2), (2, 2, 2)]

    def test_identity(self):
        assert decompose_upsample_factors((1, 1, 1)) == [(1, 1, 1)]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            decompose_upsample_factors((3, 2, 2))

    def test_product_equals_input(self):
        for factors in [(2, 4, 4), (4, 8, 8), (1, 2, 8)]:
            stages = decompose_upsample_factors(factors)
            prod = np.prod(np.array(stages), axis=0)
            assert tuple(prod) == factors


class TestUNetDecoderBaseline:
    @pytest.fixture
    def model(self):
        cfg = MeshfreeFlowNetConfig.tiny()
        return UNetDecoderBaseline(cfg, upsample_factors=(2, 2, 4))

    def test_decode_grid_shape(self, model, rng):
        lowres = Tensor(rng.standard_normal((1, 4, 2, 4, 8)))
        out = model.decode_grid(lowres)
        assert out.shape == (1, 4, 4, 8, 32)

    def test_forward_point_samples(self, model, rng):
        lowres = Tensor(rng.standard_normal((2, 4, 2, 4, 8)))
        coords = Tensor(rng.random((2, 6, 3)))
        out = model(lowres, coords)
        assert out.shape == (2, 6, 4)

    def test_predict_grid_resamples_to_requested_shape(self, model, rng):
        lowres = Tensor(rng.standard_normal((1, 4, 2, 4, 8)))
        out = model.predict_grid(lowres, (3, 7, 29))
        assert out.shape == (1, 4, 3, 7, 29)

    def test_trainable(self, model, rng):
        lowres = Tensor(rng.standard_normal((1, 4, 2, 4, 8)))
        coords = Tensor(rng.random((1, 5, 3)))
        target = Tensor(rng.standard_normal((1, 5, 4)))
        loss = ops.l1_loss(model(lowres, coords), target)
        loss.backward()
        grads = [p.grad is not None for p in model.parameters()]
        assert all(grads)

    def test_shares_unet_architecture_with_mfn(self, model):
        from repro.core import UNet3d
        assert isinstance(model.unet, UNet3d)
