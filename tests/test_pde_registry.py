"""Behavioural contract of the ``repro.pde`` name registry.

Complements the expression-level tests in ``test_pde_expressions.py``: this
file pins the registry semantics every generic caller (the scenario registry,
configuration sweeps) relies on — duplicate guards, case-insensitive lookup,
error messages that list the alternatives, and a ``"none"`` entry that
swallows arbitrary physics kwargs.
"""

from __future__ import annotations

import pytest

from repro.pde import PDESystem, available_pde_systems, make_pde_system, register_pde_system
from repro.pde import registry as pde_registry


@pytest.fixture
def scratch_registry():
    """Yield a set; any name added to it is popped from the registry afterwards."""
    added: set[str] = set()
    yield added
    for name in added:
        pde_registry._REGISTRY.pop(name.lower(), None)


class TestNullSystem:
    def test_none_accepts_physics_kwargs(self):
        """Regression: ``"none"`` must swallow the kwargs generic sweeps pass
        uniformly to every factory (it used to reject them)."""
        system = make_pde_system("none", rayleigh=1e6, prandtl=1.0, viscosity=0.01)
        assert system.constraints == []

    def test_none_forwards_layout(self):
        system = make_pde_system("none", fields=("a", "b"), coords=("t", "z", "x"))
        assert system.fields == ("a", "b")
        assert system.required_derivatives() == []

    def test_none_trains_prediction_only(self):
        from repro.core import LossWeights
        from repro.core.losses import uses_equation_loss

        system = make_pde_system("none")
        assert not uses_equation_loss(system, LossWeights(gamma=0.5))


class TestRegistryContract:
    def test_duplicate_registration_raises(self, scratch_registry):
        register_pde_system("dup_probe", lambda: PDESystem(("u",), ("t", "z", "x")))
        scratch_registry.add("dup_probe")
        with pytest.raises(ValueError, match="already registered"):
            register_pde_system("dup_probe", lambda: PDESystem(("u",), ("t", "z", "x")))

    def test_overwrite_replaces_factory(self, scratch_registry):
        register_pde_system("ow_probe", lambda: PDESystem(("u",), ("t", "z", "x")))
        scratch_registry.add("ow_probe")
        register_pde_system("ow_probe", lambda: PDESystem(("u", "w"), ("t", "z", "x")),
                            overwrite=True)
        assert make_pde_system("ow_probe").fields == ("u", "w")

    def test_lookup_is_case_insensitive(self, scratch_registry):
        register_pde_system("Case_Probe", lambda: PDESystem(("u",), ("t", "z", "x")))
        scratch_registry.add("case_probe")
        assert make_pde_system("CASE_PROBE").fields == ("u",)
        assert "case_probe" in available_pde_systems()
        assert make_pde_system("Rayleigh_Benard").constraints  # builtin, mixed case

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError) as excinfo:
            make_pde_system("does_not_exist")
        message = str(excinfo.value)
        assert "does_not_exist" in message
        for name in available_pde_systems():
            assert name in message

    def test_available_sorted_and_in_sync(self):
        names = available_pde_systems()
        assert names == sorted(names)
        for name in names:
            assert isinstance(make_pde_system(name), PDESystem)

    def test_new_families_registered(self):
        names = available_pde_systems()
        for family in ("decaying_turbulence", "shallow_water",
                       "scalar_advection_diffusion", "none"):
            assert family in names


class TestNewFamilies:
    def test_decaying_turbulence_physics_kwargs(self):
        system = make_pde_system("decaying_turbulence", viscosity=0.123)
        assert system.viscosity == 0.123
        assert {c.name for c in system.constraints} == {
            "vorticity_definition", "vorticity_transport", "continuity"}

    def test_inviscid_turbulence_drops_viscous_symbols(self):
        system = make_pde_system("decaying_turbulence", viscosity=0.0)
        transport = next(c for c in system.constraints if c.name == "vorticity_transport")
        assert "omega_xx" not in transport.symbols()
        assert "omega_zz" not in transport.symbols()

    def test_shallow_water_physics_kwargs(self):
        system = make_pde_system("shallow_water", gravity=9.81, viscosity=0.0)
        assert system.gravity == 9.81
        assert {c.name for c in system.constraints} == {"mass", "momentum_x", "momentum_z"}
        momentum_x = next(c for c in system.constraints if c.name == "momentum_x")
        assert "u_xx" not in momentum_x.symbols()  # inviscid: no diffusion terms

    def test_scalar_advection_diffusion_drops_zero_terms(self):
        system = make_pde_system("scalar_advection_diffusion",
                                 velocity=(1.0, 0.0), diffusivity=0.0)
        transport = next(c for c in system.constraints if c.name == "transport")
        assert transport.symbols() == {"c_t", "c_x"}
