"""Distributed substrate: all-reduce, communicator, sampler, DDP, performance model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.autodiff import Tensor, ops
from repro.distributed import (
    ClusterSpec,
    DataParallelGroup,
    DistributedSampler,
    GradientBuckets,
    ScalingPerformanceModel,
    SimulatedCommunicator,
    average_gradients,
    naive_allreduce,
    reduce_scatter_allgather_cost,
    ring_allreduce,
)
from repro.nn.module import Parameter
from repro.optim import SGD


class TestAllReduce:
    @pytest.mark.parametrize("world_size", [1, 2, 3, 4, 8])
    def test_ring_equals_sum(self, world_size, rng):
        buffers = [rng.standard_normal(37) for _ in range(world_size)]
        expected = np.sum(buffers, axis=0)
        results, stats = ring_allreduce(buffers)
        assert all(np.allclose(r, expected) for r in results)
        assert stats.world_size == world_size

    def test_ring_average(self, rng):
        buffers = [rng.standard_normal((3, 4)) for _ in range(4)]
        results, _ = ring_allreduce(buffers, average=True)
        assert np.allclose(results[0], np.mean(buffers, axis=0))

    def test_naive_equals_ring(self, rng):
        buffers = [rng.standard_normal(10) for _ in range(5)]
        ring, _ = ring_allreduce(buffers)
        naive, _ = naive_allreduce(buffers)
        assert np.allclose(ring[0], naive[0])

    @pytest.mark.parametrize("fn", [ring_allreduce, naive_allreduce])
    def test_single_rank_moves_no_bytes(self, fn, rng):
        """A world of one never crosses a link, whichever algorithm runs."""
        results, stats = fn([rng.standard_normal(12)])
        assert stats.bytes_per_rank == 0
        assert len(results) == 1

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ring_allreduce([rng.standard_normal(4), rng.standard_normal(5)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    def test_ring_bandwidth_advantage(self, rng):
        """Per-rank traffic of the ring algorithm is ~2(N-1)/N of the buffer size."""
        n = 8
        buffers = [rng.standard_normal(800) for _ in range(n)]
        _, ring_stats = ring_allreduce(buffers)
        per_rank_ratio = ring_stats.bytes_per_rank / buffers[0].nbytes
        assert per_rank_ratio == pytest.approx(2 * (n - 1) / n, rel=0.15)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=40))
    def test_ring_correct_property(self, world_size, length):
        rng = np.random.default_rng(world_size * 100 + length)
        buffers = [rng.standard_normal(length) for _ in range(world_size)]
        results, _ = ring_allreduce(buffers)
        assert np.allclose(results[-1], np.sum(buffers, axis=0), atol=1e-9)

    def test_analytic_cost_monotone_in_message_size(self):
        small = reduce_scatter_allgather_cost(16, 1_000, 1e9, 1e-6)
        large = reduce_scatter_allgather_cost(16, 1_000_000, 1e9, 1e-6)
        assert large > small

    def test_analytic_cost_zero_for_single_rank(self):
        assert reduce_scatter_allgather_cost(1, 100, 1e9, 1e-6) == 0.0

    def test_float32_buffers_stay_float32(self, rng):
        """The collective runs in the gradients' own precision (as NCCL would)."""
        buffers = [rng.standard_normal(16).astype(np.float32) for _ in range(3)]
        results, _ = ring_allreduce(buffers, average=True)
        assert all(r.dtype == np.float32 for r in results)
        naive, _ = naive_allreduce(buffers)
        assert naive[0].dtype == np.float32

    def test_mixed_dtypes_promote(self, rng):
        buffers = [rng.standard_normal(8).astype(np.float32), rng.standard_normal(8)]
        results, _ = ring_allreduce(buffers)
        assert results[0].dtype == np.float64

    def test_integer_buffers_promote_to_float64(self):
        results, _ = ring_allreduce([np.arange(6), np.arange(6)])
        assert results[0].dtype == np.float64
        assert np.allclose(results[0], 2 * np.arange(6))


class TestCommunicator:
    def test_allreduce_counts_bytes(self, rng):
        comm = SimulatedCommunicator(4)
        comm.allreduce([rng.standard_normal(16) for _ in range(4)])
        assert comm.total_bytes > 0
        assert comm.num_collectives == 1

    def test_wrong_buffer_count(self, rng):
        comm = SimulatedCommunicator(3)
        with pytest.raises(ValueError):
            comm.allreduce([rng.standard_normal(4)] * 2)

    def test_broadcast(self, rng):
        comm = SimulatedCommunicator(3)
        out = comm.broadcast(rng.standard_normal(5), root=0)
        assert len(out) == 3 and np.allclose(out[0], out[2])

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            SimulatedCommunicator(2, algorithm="tree")

    def test_reset_stats(self, rng):
        comm = SimulatedCommunicator(2)
        comm.allreduce([rng.standard_normal(4)] * 2)
        comm.reset_stats()
        assert comm.total_bytes == 0


class TestDistributedSampler:
    def test_partition_covers_all_indices(self):
        world = 4
        samplers = [DistributedSampler(100, world, r, shuffle=True, seed=1) for r in range(world)]
        combined = sorted(i for s in samplers for i in s.indices())
        assert set(combined) >= set(range(100))

    def test_disjoint_without_padding(self):
        world = 4
        samplers = [DistributedSampler(100, world, r, shuffle=False, seed=0) for r in range(world)]
        all_indices = [i for s in samplers for i in s.indices()]
        assert len(all_indices) == len(set(all_indices)) == 100

    def test_equal_length_per_rank(self):
        samplers = [DistributedSampler(10, 3, r) for r in range(3)]
        lengths = {len(s) for s in samplers}
        assert lengths == {4}

    def test_epoch_changes_permutation(self):
        s = DistributedSampler(50, 2, 0, shuffle=True, seed=0)
        first = s.indices()
        s.set_epoch(1)
        assert s.indices() != first

    def test_same_permutation_across_ranks(self):
        a = DistributedSampler(20, 2, 0, seed=3)
        b = DistributedSampler(20, 2, 1, seed=3)
        assert np.array_equal(a.global_permutation(), b.global_permutation())

    def test_validation(self):
        with pytest.raises(ValueError):
            DistributedSampler(10, 2, 5)
        with pytest.raises(ValueError):
            DistributedSampler(0, 1, 0)


class TestGradientBuckets:
    def _params(self, rng, shapes):
        return [Parameter(rng.standard_normal(s)) for s in shapes]

    def _grads(self, rng, params):
        """Gradients in the parameters' own (policy-dependent) dtype."""
        return [rng.standard_normal(p.shape).astype(p.data.dtype) for p in params]

    def test_roundtrip(self, rng):
        params = self._params(rng, [(3, 4), (7,), (2, 2, 2)])
        buckets = GradientBuckets(params)
        grads = self._grads(rng, params)
        flat = buckets.flatten(grads)
        back = buckets.unflatten(flat)
        for g, b in zip(grads, back):
            assert np.array_equal(g, b)

    def test_small_capacity_creates_multiple_buckets(self, rng):
        params = self._params(rng, [(64,), (64,), (64,)])
        itemsize = params[0].data.dtype.itemsize
        buckets = GradientBuckets(params, bucket_bytes=64 * itemsize)
        assert buckets.num_buckets == 3

    def test_parameter_never_split_across_buckets(self, rng):
        params = self._params(rng, [(100,), (8,)])
        buckets = GradientBuckets(params, bucket_bytes=16)  # smaller than one param
        assert buckets.num_buckets == 2
        bucket, start, end = buckets.layout[0]
        assert (start, end) == (0, 100)

    def test_none_gradients_pack_as_zeros(self, rng):
        params = self._params(rng, [(4,), (5,)])
        buckets = GradientBuckets(params)
        flat = buckets.flatten([None, np.ones(5)])
        assert np.allclose(flat[0][:4], 0.0)
        assert np.allclose(flat[0][4:], 1.0)

    def test_assign_writes_grads(self, rng):
        params = self._params(rng, [(4,), (2, 3)])
        buckets = GradientBuckets(params)
        grads = self._grads(rng, params)
        buckets.assign(params, buckets.flatten(grads))
        for p, g in zip(params, grads):
            assert np.array_equal(p.grad, g)

    def test_float32_params_give_float32_buckets(self, rng):
        params = [Parameter(rng.standard_normal(6), dtype="float32")]
        buckets = GradientBuckets(params)
        assert buckets.dtype == np.float32

    def test_allreduce_through_buckets_matches_mean(self, rng):
        params = self._params(rng, [(33,), (9,)])
        buckets = GradientBuckets(params, bucket_bytes=128)
        per_rank = [[rng.standard_normal(p.shape) for p in params] for _ in range(3)]
        flats = [buckets.flatten(g) for g in per_rank]
        reduced = [ring_allreduce([f[b] for f in flats], average=True)[0][0]
                   for b in range(buckets.num_buckets)]
        got = buckets.unflatten(reduced)
        for i in range(len(params)):
            want = np.mean([per_rank[r][i] for r in range(3)], axis=0)
            assert np.allclose(got[i], want, atol=1e-12)

    def test_shape_mismatch_raises(self, rng):
        params = self._params(rng, [(4,)])
        buckets = GradientBuckets(params)
        with pytest.raises(ValueError):
            buckets.flatten([np.zeros(5)])
        with pytest.raises(ValueError):
            buckets.flatten([np.zeros(4), np.zeros(4)])
        with pytest.raises(ValueError):
            GradientBuckets(params, bucket_bytes=0)


def _make_model_factory(seed=0):
    def factory():
        rng = np.random.default_rng(seed)
        return nn.Sequential(nn.Linear(3, 8, rng=rng), nn.Tanh(), nn.Linear(8, 1, rng=rng))
    return factory


class TestDataParallelGroup:
    def test_replicas_stay_in_sync(self, rng):
        group = DataParallelGroup(_make_model_factory(), world_size=3,
                                  optimizer_factory=lambda p: SGD(p, lr=0.05))
        assert group.parameters_in_sync()
        x = [Tensor(rng.standard_normal((4, 3))) for _ in range(3)]
        y = [Tensor(rng.standard_normal((4, 1))) for _ in range(3)]
        for _ in range(3):
            losses = [ops.mse_loss(r(xi), yi) for r, xi, yi in zip(group.replicas, x, y)]
            group.step(losses)
        assert group.parameters_in_sync()
        assert group.communication_bytes() > 0

    def test_equivalent_to_large_batch_single_process(self, rng):
        """DDP over shards == single model trained on the concatenated batch."""
        x = rng.standard_normal((8, 3))
        y = rng.standard_normal((8, 1))

        single = _make_model_factory()()
        opt = SGD(single.parameters(), lr=0.1)
        opt.zero_grad()
        ops.mse_loss(single(Tensor(x)), Tensor(y)).backward()
        opt.step()

        group = DataParallelGroup(_make_model_factory(), world_size=2,
                                  optimizer_factory=lambda p: SGD(p, lr=0.1))
        losses = [
            ops.mse_loss(group.replicas[0](Tensor(x[:4])), Tensor(y[:4])),
            ops.mse_loss(group.replicas[1](Tensor(x[4:])), Tensor(y[4:])),
        ]
        group.step(losses)

        for p_single, p_ddp in zip(single.parameters(), group.model.parameters()):
            assert np.allclose(p_single.data, p_ddp.data, atol=1e-10)

    def test_wrong_loss_count(self, rng):
        group = DataParallelGroup(_make_model_factory(), world_size=2,
                                  optimizer_factory=lambda p: SGD(p, lr=0.1))
        with pytest.raises(ValueError):
            group.step([Tensor(np.array(1.0))])

    def test_average_gradients_function(self, rng):
        replicas = [_make_model_factory()() for _ in range(2)]
        comm = SimulatedCommunicator(2)
        for i, r in enumerate(replicas):
            ops.sum(r(Tensor(rng.standard_normal((2, 3))))).backward()
        average_gradients(replicas, comm)
        for p0, p1 in zip(replicas[0].parameters(), replicas[1].parameters()):
            assert np.allclose(p0.grad, p1.grad)


class TestPerformanceModel:
    def test_efficiency_bounds(self):
        model = ScalingPerformanceModel()
        for n in (1, 2, 8, 32, 128):
            eff = model.efficiency(n)
            assert 0.0 < eff <= 1.0 + 1e-12

    def test_single_worker_is_ideal(self):
        model = ScalingPerformanceModel()
        assert model.efficiency(1) == pytest.approx(1.0)

    def test_throughput_increases_with_workers(self):
        model = ScalingPerformanceModel()
        tps = [model.throughput(n) for n in (1, 2, 16, 128)]
        assert all(b > a for a, b in zip(tps, tps[1:]))

    def test_matches_paper_headline_efficiency(self):
        """Default calibration reproduces ≈96.8% efficiency at 128 GPUs (Fig. 7a)."""
        model = ScalingPerformanceModel()
        assert model.efficiency(128) == pytest.approx(0.968, abs=0.015)

    def test_throughput_magnitude_matches_paper(self):
        model = ScalingPerformanceModel()
        assert 1.7e3 < model.throughput(128) < 2.1e3

    def test_overlap_improves_efficiency(self):
        base = ScalingPerformanceModel(overlap_fraction=0.0)
        overlapped = ScalingPerformanceModel(overlap_fraction=0.9)
        assert overlapped.efficiency(128) > base.efficiency(128)

    def test_epoch_time_decreases_with_workers(self):
        model = ScalingPerformanceModel()
        assert model.epoch_time(128) < model.epoch_time(1)
        assert model.training_time(16, 100) == pytest.approx(100 * model.epoch_time(16))

    def test_steps_per_epoch(self):
        model = ScalingPerformanceModel(samples_per_epoch=3000, batch_size_per_worker=16)
        assert model.steps_per_epoch(1) == int(np.ceil(3000 / 16))
        assert model.steps_per_epoch(128) == 2

    def test_intra_vs_inter_node_bandwidth(self):
        spec = ClusterSpec()
        assert spec.bandwidth(8) > spec.bandwidth(16)
        assert spec.latency(8) < spec.latency(16)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScalingPerformanceModel(overlap_fraction=1.5)
        with pytest.raises(ValueError):
            ScalingPerformanceModel(n_parameters=0)

    def test_evaluate_returns_points(self):
        model = ScalingPerformanceModel()
        points = model.evaluate([1, 2, 4])
        assert [p.world_size for p in points] == [1, 2, 4]
        assert all(p.step_time > 0 for p in points)
