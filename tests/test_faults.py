"""repro.faults unit tests: deterministic fault plans, Retry, CircuitBreaker.

The determinism tests enforce the tentpole contract of the fault-injection
framework: the same seed must yield the same fault schedule — both in the
pure :meth:`FaultPlan.schedule` preview and in live ``fire()`` sequences —
so every chaos test in the suite is exactly reproducible.
"""

import time

import numpy as np
import pytest

from repro.faults import (
    AttemptTimeout,
    BreakerOpenError,
    CircuitBreaker,
    FaultInjected,
    FaultPlan,
    PermanentError,
    Retry,
    TransientError,
    corrupt_file,
    is_transient,
)
from repro.faults import plan as faults_plan


def no_sleep(_seconds):
    """Backoff sink for Retry tests — never actually sleeps."""


# --------------------------------------------------------------------------- #
# FaultPlan: selectors, determinism, scoping                                  #
# --------------------------------------------------------------------------- #


class TestFaultPlanRules:
    def test_exactly_one_selector_required(self):
        plan = FaultPlan()
        with pytest.raises(ValueError, match="exactly one"):
            plan.fail("s", message="x")
        with pytest.raises(ValueError, match="exactly one"):
            plan.fail("s", message="x", at=(1,), every=2)

    def test_selector_validation(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.fail("s", every=0, message="x")
        with pytest.raises(ValueError):
            plan.fail("s", p=1.5, message="x")
        with pytest.raises(ValueError):
            plan.fail("s", at=(0,), message="x")  # call numbers are 1-based
        with pytest.raises(ValueError):
            plan.delay("s", -1.0, every=1)
        with pytest.raises(TypeError):
            plan.corrupt("s", mutator=None, every=1)

    def test_at_selector_fires_exact_calls(self):
        plan = FaultPlan(seed=0)
        plan.fail("site", at=(2, 4), message="boom")
        hits = []
        with plan:
            for call in range(1, 6):
                try:
                    plan.fire("site")
                except FaultInjected:
                    hits.append(call)
        assert hits == [2, 4]

    def test_every_selector(self):
        plan = FaultPlan(seed=0)
        plan.fail("site", every=3, message="boom")
        hits = []
        with plan:
            for call in range(1, 10):
                try:
                    plan.fire("site")
                except FaultInjected:
                    hits.append(call)
        assert hits == [3, 6, 9]

    def test_probability_selector_is_seed_deterministic(self):
        def live_hits(seed):
            plan = FaultPlan(seed=seed)
            plan.fail("site", p=0.5, message="boom")
            hits = []
            with plan:
                for call in range(1, 41):
                    try:
                        plan.fire("site")
                    except FaultInjected:
                        hits.append(call)
            return hits

        first, again = live_hits(7), live_hits(7)
        assert first == again
        assert first  # p=0.5 over 40 calls fires at least once
        assert live_hits(8) != first

    def test_schedule_preview_matches_live_firing(self):
        plan = FaultPlan(seed=13)
        plan.fail("site", p=0.3, message="boom")
        plan.delay("site", 0.0, every=5)
        preview = plan.schedule("site", 25)

        live = FaultPlan(seed=13)
        live.fail("site", p=0.3, message="boom")
        live.delay("site", 0.0, every=5)
        fired = []
        with live:
            for call in range(1, 26):
                try:
                    live.fire("site")
                except FaultInjected:
                    fired.append((call, "raise"))
        raises_only = [entry for entry in preview if entry[1] == "raise"]
        assert fired == raises_only
        delays = [entry for entry in preview if entry[1] == "delay"]
        assert [c for c, _ in delays] == [5, 10, 15, 20, 25]

    def test_max_faults_budget(self):
        plan = FaultPlan(seed=0)
        plan.fail("site", every=1, message="boom", max_faults=2)
        hits = 0
        with plan:
            for _ in range(6):
                try:
                    plan.fire("site")
                except FaultInjected:
                    hits += 1
        assert hits == 2
        assert plan.schedule("site", 6) == [(1, "raise"), (2, "raise")]

    def test_fnmatch_site_patterns(self):
        plan = FaultPlan(seed=0)
        plan.fail("comm.*", every=1, message="boom")
        with plan:
            with pytest.raises(FaultInjected):
                plan.fire("comm.allreduce")
            with pytest.raises(FaultInjected):
                plan.fire("comm.send")
            plan.fire("serving.worker")  # no match, no fault
        assert plan.counts() == {"comm.allreduce": 1, "comm.send": 1,
                                 "serving.worker": 1}

    def test_custom_exception_class_and_transience(self):
        plan = FaultPlan(seed=0)
        plan.fail("a", at=(1,), exc=OSError, message="disk gone")
        plan.fail("b", at=(1,), message="fatal", transient=False)
        with plan:
            with pytest.raises(OSError, match="disk gone"):
                plan.fire("a")
            with pytest.raises(FaultInjected) as err:
                plan.fire("b")
        assert err.value.transient is False
        assert not is_transient(err.value)

    def test_delay_rule_sleeps(self):
        plan = FaultPlan(seed=0)
        plan.delay("site", 0.05, at=(1,))
        with plan:
            start = time.monotonic()
            plan.fire("site")
            assert time.monotonic() - start >= 0.04

    def test_corrupt_rule_mutates_payload(self):
        plan = FaultPlan(seed=0)
        plan.corrupt("site", mutator=lambda arr: -arr, at=(2,))
        payload = np.array([1.0, 2.0])
        with plan:
            assert plan.fire("site", payload=payload) is payload
            replaced = plan.fire("site", payload=payload)
        assert np.array_equal(replaced, [-1.0, -2.0])

    def test_corrupt_file_flips_bytes(self, tmp_path):
        target = tmp_path / "payload.bin"
        target.write_bytes(b"hello")
        corrupt_file(target)
        assert target.read_bytes() != b"hello"
        assert len(target.read_bytes()) == 5

    def test_events_record_site_kind_and_call(self):
        plan = FaultPlan(seed=0, name="unit")
        plan.fail("site", at=(2,), message="boom")
        with plan:
            plan.fire("site")
            with pytest.raises(FaultInjected):
                plan.fire("site")
        assert [(e.site, e.kind, e.call) for e in plan.events] == [("site", "raise", 2)]
        assert plan.injected() == {("site", "raise"): 1}


class TestFaultPlanScoping:
    def test_sites_ignore_inactive_plans(self):
        # Injection sites guard on the module-global ACTIVE, the idiom every
        # instrumented subsystem uses; an un-activated plan is invisible.
        def instrumented_site():
            if faults_plan.ACTIVE is not None:
                faults_plan.ACTIVE.fire("site")
            return "ok"

        plan = FaultPlan(seed=0)
        plan.fail("site", every=1, message="boom")
        assert instrumented_site() == "ok"  # not activated: no fault
        with plan:
            with pytest.raises(FaultInjected):
                instrumented_site()
        assert instrumented_site() == "ok"  # deactivated again

    def test_context_manager_scopes_activation(self):
        plan = FaultPlan(seed=0)
        assert faults_plan.ACTIVE is None
        with plan:
            assert faults_plan.ACTIVE is plan
        assert faults_plan.ACTIVE is None

    def test_activation_clears_on_exception(self):
        plan = FaultPlan(seed=0)
        plan.fail("site", at=(1,), message="boom")
        with pytest.raises(FaultInjected):
            with plan:
                plan.fire("site")
        assert faults_plan.ACTIVE is None

    def test_plans_do_not_nest(self):
        with FaultPlan(seed=0, name="outer"):
            with pytest.raises(RuntimeError, match="outer"):
                FaultPlan(seed=1).__enter__()
        assert faults_plan.ACTIVE is None


# --------------------------------------------------------------------------- #
# Transient classification                                                    #
# --------------------------------------------------------------------------- #


class TestIsTransient:
    def test_classification_table(self):
        assert is_transient(TransientError("x"))
        assert is_transient(AttemptTimeout("slow"))
        assert is_transient(ConnectionError("reset"))
        assert is_transient(TimeoutError("late"))
        assert not is_transient(PermanentError("bad config"))
        assert not is_transient(ValueError("bug"))
        assert is_transient(ValueError("listed"), extra=(ValueError,))

    def test_fault_injected_carries_its_transience(self):
        assert is_transient(FaultInjected("s", transient=True))
        assert not is_transient(FaultInjected("s", transient=False))

    def test_permanent_wins_over_extra(self):
        class Weird(PermanentError):
            pass

        assert not is_transient(Weird("x"), extra=(Weird,))


# --------------------------------------------------------------------------- #
# Retry                                                                       #
# --------------------------------------------------------------------------- #


class TestRetry:
    def test_validation(self):
        with pytest.raises(ValueError):
            Retry(max_attempts=0)
        with pytest.raises(ValueError):
            Retry(backoff=-1.0)
        with pytest.raises(ValueError):
            Retry(multiplier=0.5)
        with pytest.raises(ValueError):
            Retry(jitter=2.0)
        with pytest.raises(TypeError):
            Retry(retry_on=("not-a-class",))

    def test_delay_schedule_is_deterministic(self):
        a = Retry(backoff=0.1, multiplier=2.0, jitter=0.25, seed=3, max_backoff=10.0)
        b = Retry(backoff=0.1, multiplier=2.0, jitter=0.25, seed=3, max_backoff=10.0)
        assert [a.delay_for(n) for n in range(1, 6)] == [b.delay_for(n) for n in range(1, 6)]
        c = Retry(backoff=0.1, multiplier=2.0, jitter=0.25, seed=4, max_backoff=10.0)
        assert [a.delay_for(n) for n in range(1, 6)] != [c.delay_for(n) for n in range(1, 6)]

    def test_delay_grows_exponentially_and_caps(self):
        retry = Retry(backoff=0.1, multiplier=2.0, jitter=0.0, max_backoff=0.35)
        assert retry.delay_for(1) == pytest.approx(0.1)
        assert retry.delay_for(2) == pytest.approx(0.2)
        assert retry.delay_for(3) == pytest.approx(0.35)  # capped
        assert retry.delay_for(10) == pytest.approx(0.35)

    def test_jitter_stays_within_band(self):
        retry = Retry(backoff=0.1, multiplier=1.0, jitter=0.2, seed=9)
        for attempt in range(1, 20):
            assert 0.08 <= retry.delay_for(attempt) <= 0.12

    def test_retries_transient_then_succeeds(self):
        retry = Retry(max_attempts=4, backoff=0.0, jitter=0.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return "done"

        assert retry.call(flaky, sleep=no_sleep) == "done"
        assert calls["n"] == 3

    def test_non_retryable_raises_immediately(self):
        retry = Retry(max_attempts=5, backoff=0.0)
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry.call(broken, sleep=no_sleep)
        assert calls["n"] == 1

    def test_exhaustion_reraises_original_error(self):
        retry = Retry(max_attempts=3, backoff=0.0, jitter=0.0)
        calls = {"n": 0}

        def always_failing():
            calls["n"] += 1
            raise TransientError(f"blip {calls['n']}")

        with pytest.raises(TransientError, match="blip 3"):
            retry.call(always_failing, sleep=no_sleep)
        assert calls["n"] == 3

    def test_retry_on_extends_classification(self):
        retry = Retry(max_attempts=2, backoff=0.0, retry_on=(KeyError,))
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyError("missing")
            return "ok"

        assert retry.call(flaky, sleep=no_sleep) == "ok"

    def test_on_retry_callback_sees_attempt_and_error(self):
        retry = Retry(max_attempts=3, backoff=0.0, jitter=0.0)
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientError("blip")
            return "ok"

        retry.call(flaky, on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
                   sleep=no_sleep)
        assert seen == [(1, TransientError), (2, TransientError)]

    def test_attempt_timeout_surfaces_as_retryable(self):
        retry = Retry(max_attempts=2, backoff=0.0, jitter=0.0, attempt_timeout=0.05)
        calls = {"n": 0}

        def slow_then_fast():
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(0.5)
            return "ok"

        assert retry.call(slow_then_fast, sleep=no_sleep) == "ok"
        assert calls["n"] == 2

    def test_attempt_timeout_exhaustion_raises_attempt_timeout(self):
        retry = Retry(max_attempts=1, attempt_timeout=0.02)
        with pytest.raises(AttemptTimeout):
            retry.call(lambda: time.sleep(0.5), sleep=no_sleep)

    def test_total_deadline_stops_retrying(self):
        retry = Retry(max_attempts=50, backoff=10.0, jitter=0.0, total_deadline=0.01)
        calls = {"n": 0}

        def always_failing():
            calls["n"] += 1
            raise TransientError("blip")

        with pytest.raises(TransientError):
            retry.call(always_failing, sleep=no_sleep)
        assert calls["n"] == 1  # the 10 s backoff would blow the deadline


# --------------------------------------------------------------------------- #
# CircuitBreaker                                                              #
# --------------------------------------------------------------------------- #


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown", 1.0)
        breaker = CircuitBreaker(name="unit", clock=clock, **kwargs)
        return breaker, clock

    def test_opens_after_threshold_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_after_cooldown_then_closes_on_success(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()  # half-open probe
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.5)  # fresh cooldown: not elapsed yet
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.allow()

    def test_transitions_are_recorded_and_reported(self):
        seen = []
        breaker, clock = self.make(failure_threshold=1, on_transition=lambda old, new:
                                   seen.append((old, new)))
        breaker.record_failure()
        clock.advance(1.5)
        breaker.allow()
        breaker.record_success()
        assert seen == [("closed", "open"), ("open", "half_open"),
                        ("half_open", "closed")]
        assert [new for _, new in breaker.transitions] == ["open", "half_open", "closed"]

    def test_call_raises_breaker_open_error(self):
        breaker, clock = self.make(failure_threshold=1, cooldown=5.0)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")).__next__())
        with pytest.raises(BreakerOpenError) as err:
            breaker.call(lambda: "never runs")
        assert "unit" in str(err.value)
        clock.advance(6.0)
        assert breaker.call(lambda: "served") == "served"
        assert breaker.state == "closed"
