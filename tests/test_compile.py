"""Graph-capture fused executor: equivalence, caching, allocation regression.

The contract under test (ISSUE 5 acceptance criteria):

* compiled execution matches eager **bit-for-bit** — forward, first- and
  second-order derivative graphs (the ``forward_with_derivatives`` stack
  through the decoder MLP) — under both precision policies;
* plans are cached per (module fingerprint, input shapes/dtypes, dtype
  policy) and invalidate on shape, dtype-policy and weight-identity
  changes;
* steady-state execution of a fully lowered plan allocates **nothing**
  (buffer-arena regression pin);
* fallback to eager execution is automatic whenever a plan could be wrong
  (gradients without ``backward=True``, impure modules, double backward).
"""

import tracemalloc

import numpy as np
import pytest

from repro import compile as rc
from repro import nn
from repro.autodiff import Tensor, grad, inference_mode, no_grad, ops
from repro.backend import precision
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.core.imnet import ImNet
from repro.inference import InferenceEngine
from repro.training import Trainer, TrainerConfig


def make_imnet(dtype=None):
    if dtype is None:
        return ImNet(coord_dim=3, latent_dim=6, out_channels=4, hidden=(16, 16)).eval()
    with precision(dtype):
        return ImNet(coord_dim=3, latent_dim=6, out_channels=4, hidden=(16, 16)).eval()


def decoder_input(shape=(2, 64, 9), seed=0, dtype=np.float64, requires_grad=False):
    data = np.random.default_rng(seed).standard_normal(shape).astype(dtype)
    return Tensor(data, requires_grad=requires_grad)


class TestTracer:
    def test_trace_captures_linear_program(self):
        imnet = make_imnet()
        program, structure, result = rc.trace(imnet, decoder_input())
        assert structure == "single"
        assert np.array_equal(result.data, imnet(decoder_input()).data)
        # 3 Linear layers (matmul + bias add) + 2 softplus activations.
        assert [n.op_name for n in program.nodes] == [
            "MatMul", "Add", "Softplus", "MatMul", "Add", "Softplus", "MatMul", "Add",
        ]
        assert len(program.input_ids) == 1 and len(program.output_ids) == 1

    def test_trace_rejects_non_tensor_inputs(self):
        with pytest.raises(TypeError):
            rc.trace(lambda x: x, np.zeros(3))

    def test_nested_tracer_install_rejected(self):
        from repro.autodiff.tensor import tracing

        with tracing(rc.Tracer()):
            with pytest.raises(RuntimeError, match="nested"):
                with tracing(rc.Tracer()):
                    pass

    def test_compiled_callee_inlines_into_outer_trace(self):
        """A compiled function invoked while another trace records must run
        eagerly so its primitives land in the outer program — replaying its
        plan would freeze one result into the capture as a constant."""
        imnet = make_imnet()
        inner = rc.compile_fn(imnet, copy_outputs=False)
        with inference_mode():
            inner(decoder_input(seed=21))  # warm the inner plan cache

        def outer(x):
            return ops.mul(inner(x), 2.0)

        cf = rc.compile_fn(outer)
        with no_grad():
            cf(decoder_input(seed=22))           # traces the outer program
            x = decoder_input(seed=23)           # replay must use live data
            out = cf(x)
        assert np.array_equal(out.data, 2.0 * imnet(x).data)
        assert cf.stats()["n_plans"] == 1 and cf.stats()["n_fallback_keys"] == 0

    def test_trace_miss_runs_the_function_once(self):
        calls = {"n": 0}
        imnet = make_imnet()

        def counted(x):
            calls["n"] += 1
            return imnet(x)

        cf = rc.compile_fn(counted)
        with no_grad():
            first = cf(decoder_input(seed=24))   # miss: served by the trace itself
        assert calls["n"] == 1
        with no_grad():
            second = cf(decoder_input(seed=24))  # hit: plan replay, no fn call
        assert calls["n"] == 1
        assert np.array_equal(first.data, second.data)

    def test_describe_lists_ops(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input())
        text = cm.plans[0].describe()
        assert "MatMul" in text and "Softplus" in text and "n_inplace" in text


class TestForwardEquivalence:
    @pytest.mark.parametrize("policy", ["float64", "float32"])
    def test_forward_bitwise_equal(self, policy):
        imnet = make_imnet(policy)
        dtype = np.dtype(policy)
        cm = rc.compile(imnet)
        with precision(policy):
            x = decoder_input(dtype=dtype, seed=1)
            with inference_mode():
                eager = imnet(x)
                compiled = cm(x)
        assert compiled.dtype == dtype
        assert np.array_equal(eager.data, compiled.data)

    def test_fresh_data_replays_not_bakes(self):
        """A cached plan must recompute from live inputs, not trace-time data."""
        imnet = make_imnet()
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input(seed=1))
            x2 = decoder_input(seed=2)
            assert np.array_equal(imnet(x2).data, cm(x2).data)
        assert cm.stats()["n_plans"] == 1

    def test_engine_compiled_decode_bitwise_equal(self):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
        lowres = np.random.default_rng(0).standard_normal((2, 4, 2, 8, 8))
        eager = InferenceEngine(model)
        compiled = InferenceEngine(model, compile=True)
        out_e = eager.predict_grid(lowres, (4, 16, 16))
        out_c = compiled.predict_grid(lowres, (4, 16, 16))
        assert np.array_equal(out_e, out_c)
        stats = compiled.compile_stats
        assert stats["plan_hits"] > 0 and stats["runtime_allocs"] == 0

    def test_engine_compiled_query_points_bitwise_equal(self):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
        rng = np.random.default_rng(3)
        lowres = rng.standard_normal((1, 4, 2, 8, 8))
        pts = rng.random((257, 3))
        out_e = InferenceEngine(model).query_points(lowres, pts)
        out_c = InferenceEngine(model, compile=True).query_points(lowres, pts)
        assert np.array_equal(out_e, out_c)


class TestDerivativeEquivalence:
    @staticmethod
    def derivative_stack(imnet):
        """First and second coordinate derivatives through the decoder MLP —
        the exact op pattern ``forward_with_derivatives`` builds for the
        equation loss."""

        def fn(x):
            y = imnet(x)
            g1 = grad(ops.sum(y), x, create_graph=True)
            d_dt = ops.getitem(g1, (slice(None), slice(None), 0))
            g2 = grad(ops.sum(d_dt), x, create_graph=True)
            return y, g1, g2

        return fn

    @pytest.mark.parametrize("policy", ["float64", "float32"])
    def test_second_order_bitwise_equal(self, policy):
        imnet = make_imnet(policy)
        dtype = np.dtype(policy)
        fn = self.derivative_stack(imnet)
        cf = rc.compile_fn(fn)
        with precision(policy):
            x = decoder_input((1, 32, 9), seed=4, dtype=dtype, requires_grad=True)
            eager = fn(x)
            compiled = cf(x)  # traces
            x2 = decoder_input((1, 32, 9), seed=5, dtype=dtype, requires_grad=True)
            eager2, compiled2 = fn(x2), cf(x2)  # replays
        for e, c in zip((*eager, *eager2), (*compiled, *compiled2)):
            assert np.array_equal(e.data, c.data)
        assert cf.stats() == {**cf.stats(), "n_plans": 1, "runtime_allocs": 0}

    def test_model_forward_with_derivatives_unchanged_by_compiled_decoder(self):
        """Installing a (backward=False) compiled decoder must leave the
        second-order equation-loss stack on the eager path, bit-identical."""
        from repro.pde import RayleighBenard2D

        config = MeshfreeFlowNetConfig.tiny()
        model = MeshfreeFlowNet(config)
        rng = np.random.default_rng(0)
        lowres = Tensor(rng.standard_normal((1, 4, 2, 8, 8)))
        coords = Tensor(rng.random((1, 16, 3)), requires_grad=True)
        pde = RayleighBenard2D(rayleigh=1e6)
        pred_e, values_e = model.forward_with_derivatives(lowres, coords, pde)
        model.compile_decoder()
        pred_c, values_c = model.forward_with_derivatives(lowres, coords, pde)
        assert np.array_equal(pred_e.data, pred_c.data)
        for key in values_e:
            assert np.array_equal(values_e[key].data, values_c[key].data), key
        model.uncompile_decoder()


class TestCompiledBackward:
    def test_first_order_param_grads_bitwise_equal(self):
        imnet = make_imnet()
        x = decoder_input(seed=6)
        target = decoder_input((2, 64, 4), seed=7)

        def loss_through(decoder):
            return ops.mean(ops.square(ops.sub(decoder(x), target)))

        loss_e = loss_through(imnet)
        loss_e.backward()
        ref = {name: p.grad.copy() for name, p in imnet.named_parameters()}
        imnet.zero_grad()

        cm = rc.compile(imnet, backward=True)
        loss_c = loss_through(cm)
        loss_c.backward()
        assert np.array_equal(loss_e.data, loss_c.data)
        for name, p in imnet.named_parameters():
            assert np.array_equal(ref[name], p.grad), name

    def test_input_grads_bitwise_equal(self):
        imnet = make_imnet()
        x = decoder_input(seed=8, requires_grad=True)
        ge = grad(ops.sum(imnet(x)), x)
        cm = rc.compile(imnet, backward=True)
        gc = grad(ops.sum(cm(x)), x)
        assert np.array_equal(ge.data, gc.data)

    def test_double_backward_raises(self):
        imnet = make_imnet()
        cm = rc.compile(imnet, backward=True)
        x = decoder_input(seed=9, requires_grad=True)
        with pytest.raises(RuntimeError, match="first-order"):
            grad(ops.sum(cm(x)), x, create_graph=True)

    def test_inplace_weight_update_visible_without_retrace(self):
        imnet = make_imnet()
        cm = rc.compile(imnet, backward=True)
        x = decoder_input(seed=10, requires_grad=True)
        grad(ops.sum(cm(x)), x)
        n_runners = cm.stats()["n_grad_plans"]
        for p in imnet.parameters():
            p.data[...] = p.data * 0.5  # optimizer-style in-place update
        with inference_mode():
            assert np.array_equal(imnet(x.detach()).data, cm(x.detach()).data)
        assert cm.stats()["n_grad_plans"] == n_runners  # no invalidation

    def test_trainer_compile_prediction_only_bit_identical(self, tiny_dataset):
        def run(compile_flag):
            model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=3))
            cfg = TrainerConfig(epochs=1, batch_size=1, world_size=2, gamma=0.0,
                                steps_per_epoch=2, compile=compile_flag)
            Trainer(model, tiny_dataset, config=cfg).train()
            return model

        eager, compiled = run(False), run(True)
        assert compiled._decoder is not None and compiled._decoder.backward
        for pe, pc in zip(eager.parameters(), compiled.parameters()):
            assert np.array_equal(pe.data, pc.data)


class TestKernelExactness:
    """Fused lowerings whose natural fast form would diverge from eager."""

    def test_relu_matches_eager_including_zero_sign(self):
        x = Tensor(np.array([-3.0, -0.0, 0.0, 2.0, -1e-300]))
        cf = rc.compile_fn(lambda t: ops.relu(t))
        with no_grad():
            compiled = cf(x)
        eager = ops.relu(x)
        assert np.array_equal(eager.data, compiled.data)
        assert np.array_equal(np.signbit(eager.data), np.signbit(compiled.data))

    @pytest.mark.parametrize("slope", [0.01, 1.0, 1.5, -0.5])
    def test_leaky_relu_all_slopes_match_eager(self, slope):
        """Slopes outside [0, 1] break the fused max identity and must take
        the eager fallback path instead of silently diverging."""
        x = Tensor(np.random.default_rng(0).standard_normal(128))
        cf = rc.compile_fn(lambda t: ops.leaky_relu(t, slope))
        with no_grad():
            compiled = cf(x)
        assert np.array_equal(ops.leaky_relu(x, slope).data, compiled.data)

    def test_live_buffer_constants_are_not_folded(self):
        """Eval-mode BatchNorm arithmetic on running statistics is all-constant
        at trace time, but the statistics are *live* module state: an
        in-place update (load_state_dict writes in place) must reach
        replays, so folding may not snapshot them."""
        bn = nn.Sequential(nn.BatchNorm3d(3)).eval()
        cm = rc.compile(bn)
        rng = np.random.default_rng(5)
        x = Tensor(rng.standard_normal((2, 3, 2, 4, 4)))
        with inference_mode():
            first = cm(x)
            assert np.array_equal(bn(x).data, first.data)
            # in-place running-stat update, array identity unchanged
            bn[0].running_var[...] = bn[0].running_var * 3.0
            bn[0].running_mean[...] = bn[0].running_mean + 0.25
            second = cm(x)
            assert np.array_equal(bn(x).data, second.data)
        assert not np.array_equal(first.data, second.data)

    def test_unfreezing_a_parameter_invalidates_grad_plans(self):
        """A VJP plan traced while a parameter was frozen bakes a None grad
        slot for it; un-freezing must re-trace, not silently skip."""
        imnet = make_imnet()
        frozen = imnet.net[0].bias
        frozen.requires_grad = False
        cm = rc.compile(imnet, backward=True)
        x = decoder_input(seed=25, requires_grad=True)
        loss = ops.sum(cm(x))
        imnet.zero_grad()
        loss.backward()
        assert frozen.grad is None
        frozen.requires_grad = True
        imnet.zero_grad()
        ops.sum(cm(x)).backward()
        reference = make_imnet()
        reference.load_state_dict(imnet.state_dict())
        ops.sum(reference(x)).backward()
        assert frozen.grad is not None
        for (name, p), (_, q) in zip(imnet.named_parameters(),
                                     reference.named_parameters()):
            assert np.array_equal(p.grad, q.grad), name


class TestPlanCache:
    def test_hit_on_repeat_and_miss_on_shape_change(self):
        cm = rc.compile(make_imnet())
        with inference_mode():
            cm(decoder_input((2, 64, 9)))        # miss: served by the trace
            cm(decoder_input((2, 64, 9), seed=2))
            stats = cm.stats()
            assert stats["n_plans"] == 1 and stats["plan_hits"] == 1
            cm(decoder_input((2, 33, 9)))
            assert cm.stats()["n_plans"] == 2

    def test_per_policy_plans(self):
        """The same wrapper serves both policies with separate plans."""
        imnet64 = make_imnet()
        cm = rc.compile(imnet64)
        with inference_mode():
            cm(decoder_input())
            with precision("float32"):
                # float64 weights + float32 input: eager promotes; the plan
                # must be traced under the float32 policy key, not reuse the
                # float64 plan.
                x32 = decoder_input(dtype=np.float32, seed=11)
                out = cm(x32)
                assert np.array_equal(out.data, imnet64(x32).data)
        assert cm.stats()["n_plans"] == 2

    def test_invalidation_on_weight_rebind(self):
        # Built explicitly float64 so the float32 cast below re-materialises
        # the weights under any ambient policy (a same-dtype cast is a no-op).
        imnet = make_imnet("float64")
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input())
            assert cm.stats()["n_plans"] == 1
            imnet.astype("float32")  # re-materialises every parameter array
            x32 = decoder_input(dtype=np.float32, seed=12)
            with precision("float32"):
                out = cm(x32)
                assert np.array_equal(out.data, imnet(x32).data)
        stats = cm.stats()
        assert stats["n_plans"] == 1  # old plan dropped, one fresh plan

    def test_invalidation_on_mode_flip(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input())
        imnet.train()
        with inference_mode():
            cm(decoder_input())
        assert cm.stats()["n_plans"] == 1  # re-traced under the new mode

    def test_lru_bound(self):
        cm = rc.compile(make_imnet(), max_plans=2)
        with inference_mode():
            for n in (8, 16, 24):
                cm(decoder_input((1, n, 9), seed=n))
        assert cm.stats()["n_plans"] == 2

    def test_grad_fallback_without_backward(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)  # backward=False
        x = decoder_input(seed=13, requires_grad=True)
        g = grad(ops.sum(cm(x)), x)  # must fall back eagerly, not break
        assert np.array_equal(g.data, grad(ops.sum(imnet(x)), x).data)
        assert cm.stats()["eager_calls"] >= 1 and cm.stats()["n_plans"] == 0

    def test_impure_modules_rejected(self):
        dropout_net = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        with pytest.raises(ValueError, match="Dropout"):
            rc.compile(dropout_net)
        bn = nn.Sequential(nn.BatchNorm3d(3))
        with pytest.raises(ValueError, match="BatchNorm"):
            rc.compile(bn)
        rc.compile(bn.eval())  # fine in eval mode


class TestAllocationRegression:
    #: Steady-state budget: one NumPy buffered-iteration scratch
    #: (``np.getbufsize()`` elements, ~64 KB, constant in the problem size —
    #: ufuncs use it for broadcast operands such as bias rows even with
    #: ``out=``) plus Python-object noise.  Any arena rot shows up as
    #: per-op *intermediate* arrays, which at the test size are ~2 MB each.
    STEADY_STATE_BUDGET = 192 * 1024

    def test_steady_state_decode_allocates_nothing(self):
        """The buffer-arena pin: a warmed compiled ImNet decode step must not
        allocate arrays — neither plan-reported fallback allocations nor
        tracemalloc peaks beyond the constant NumPy-internal budget."""
        imnet = make_imnet()
        cm = rc.compile(imnet, copy_outputs=False)
        x = decoder_input((4, 4096, 9), seed=14)
        with inference_mode():
            cm(x)  # warm: trace + arena allocation
            plan = cm.plans[0]
            before = plan.runtime_allocs
            tracemalloc.start()
            for _ in range(3):
                cm(x)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert plan.runtime_allocs == before  # no fallback allocations
        assert peak < self.STEADY_STATE_BUDGET, f"compiled decode allocated {peak} bytes"

    def test_eager_same_step_allocates_orders_more(self):
        """Companion measurement keeping the pin honest: the same workload on
        the eager tape allocates an intermediate per primitive — far above
        the compiled budget, so the threshold separates the two regimes."""
        imnet = make_imnet()
        x = decoder_input((4, 4096, 9), seed=14)
        with inference_mode():
            imnet(x)
            tracemalloc.start()
            for _ in range(3):
                imnet(x)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert peak > 8 * self.STEADY_STATE_BUDGET

    def test_fused_chain_and_arena_stats(self):
        cm = rc.compile(make_imnet(), copy_outputs=False)
        with inference_mode():
            cm(decoder_input())
        stats = cm.plans[0].stats
        assert stats.n_fallback == 0
        assert stats.n_inplace >= 5          # bias adds + activations fused
        assert stats.n_buffers <= 3          # whole MLP flows through <= 3 buffers
        assert stats.arena_bytes > 0

    def test_derivative_plan_folds_and_eliminates(self):
        imnet = make_imnet()
        fn = TestDerivativeEquivalence.derivative_stack(imnet)
        cf = rc.compile_fn(fn)
        cf(decoder_input((1, 32, 9), seed=4, requires_grad=True))
        stats = cf.plans[0].stats
        assert stats.n_folded > 0            # constant grad seeds fold away
        assert stats.n_dead > 0              # unused forward tail eliminated
        assert stats.n_fallback == 0


class TestPowLowering:
    """Satellite: small integer exponents route through multiplies."""

    def test_values_match_multiplies(self):
        x = Tensor(np.random.default_rng(0).standard_normal(64))
        assert np.array_equal(ops.pow(x, 2.0).data, (x.data * x.data))
        assert np.array_equal(ops.pow(x, 3.0).data, (x.data * x.data) * x.data)
        assert np.array_equal(ops.pow(x, 1.0).data, x.data)
        positive = ops.abs(x)
        assert np.array_equal(ops.pow(positive, 0.5).data, np.sqrt(positive.data))

    @pytest.mark.parametrize("exponent", [2.0, 3.0, 1.0])
    def test_gradients_match_closed_form(self, exponent):
        x = Tensor(np.random.default_rng(1).standard_normal(32), requires_grad=True)
        g = grad(ops.sum(ops.pow(x, exponent)), x)
        expected = exponent * x.data ** (exponent - 1.0)
        assert np.allclose(g.data, expected, rtol=1e-12, atol=0)

    def test_second_order_still_works(self):
        x = Tensor(np.random.default_rng(2).standard_normal(16), requires_grad=True)
        g1 = grad(ops.sum(ops.pow(x, 3.0)), x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        assert np.allclose(g2.data, 6.0 * x.data, rtol=1e-12, atol=1e-12)
