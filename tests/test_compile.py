"""Graph-capture fused executor: equivalence, caching, allocation regression.

The contract under test (ISSUE 5 acceptance criteria):

* compiled execution matches eager **bit-for-bit** — forward, first- and
  second-order derivative graphs (the ``forward_with_derivatives`` stack
  through the decoder MLP) — under both precision policies;
* plans are cached per (module fingerprint, input shapes/dtypes, dtype
  policy) and invalidate on shape, dtype-policy and weight-identity
  changes;
* steady-state execution of a fully lowered plan allocates **nothing**
  (buffer-arena regression pin);
* fallback to eager execution is automatic whenever a plan could be wrong
  (gradients without ``backward=True``, impure modules) — and never
  silent: one :class:`~repro.compile.CompileFallbackWarning` per
  (wrapper, reason), with per-call counts in ``stats()`` and the metrics
  registry (ISSUE 8);
* double backward works through compiled plans — ``compile(module,
  backward=True)`` and :class:`~repro.compile.CompiledTrainingStep`
  replay the whole equation-loss training step (forward, residuals,
  loss, parameter VJP and BatchNorm effects) bit-identically (ISSUE 8);
* maximal elementwise runs are emitted as generated per-region callables
  (the codegen fusion tier), preserving both bit-exactness and the
  steady-state zero-allocation pin (ISSUE 8).
"""

import tracemalloc
import warnings

import numpy as np
import pytest

from repro import compile as rc
from repro import nn
from repro.autodiff import Tensor, grad, inference_mode, no_grad, ops
from repro.backend import precision
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.core.imnet import ImNet
from repro.inference import InferenceEngine
from repro.training import Trainer, TrainerConfig


def make_imnet(dtype=None):
    if dtype is None:
        return ImNet(coord_dim=3, latent_dim=6, out_channels=4, hidden=(16, 16)).eval()
    with precision(dtype):
        return ImNet(coord_dim=3, latent_dim=6, out_channels=4, hidden=(16, 16)).eval()


def decoder_input(shape=(2, 64, 9), seed=0, dtype=np.float64, requires_grad=False):
    data = np.random.default_rng(seed).standard_normal(shape).astype(dtype)
    return Tensor(data, requires_grad=requires_grad)


class TestTracer:
    def test_trace_captures_linear_program(self):
        imnet = make_imnet()
        program, structure, result = rc.trace(imnet, decoder_input())
        assert structure == "single"
        assert np.array_equal(result.data, imnet(decoder_input()).data)
        # 3 Linear layers (matmul + bias add) + 2 softplus activations.
        assert [n.op_name for n in program.nodes] == [
            "MatMul", "Add", "Softplus", "MatMul", "Add", "Softplus", "MatMul", "Add",
        ]
        assert len(program.input_ids) == 1 and len(program.output_ids) == 1

    def test_trace_rejects_non_tensor_inputs(self):
        with pytest.raises(TypeError):
            rc.trace(lambda x: x, np.zeros(3))

    def test_nested_tracer_install_rejected(self):
        from repro.autodiff.tensor import tracing

        with tracing(rc.Tracer()):
            with pytest.raises(RuntimeError, match="nested"):
                with tracing(rc.Tracer()):
                    pass

    def test_compiled_callee_inlines_into_outer_trace(self):
        """A compiled function invoked while another trace records must run
        eagerly so its primitives land in the outer program — replaying its
        plan would freeze one result into the capture as a constant."""
        imnet = make_imnet()
        inner = rc.compile_fn(imnet, copy_outputs=False)
        with inference_mode():
            inner(decoder_input(seed=21))  # warm the inner plan cache

        def outer(x):
            return ops.mul(inner(x), 2.0)

        cf = rc.compile_fn(outer)
        with no_grad():
            cf(decoder_input(seed=22))           # traces the outer program
            x = decoder_input(seed=23)           # replay must use live data
            out = cf(x)
        assert np.array_equal(out.data, 2.0 * imnet(x).data)
        assert cf.stats()["n_plans"] == 1 and cf.stats()["n_fallback_keys"] == 0

    def test_trace_miss_runs_the_function_once(self):
        calls = {"n": 0}
        imnet = make_imnet()

        def counted(x):
            calls["n"] += 1
            return imnet(x)

        cf = rc.compile_fn(counted)
        with no_grad():
            first = cf(decoder_input(seed=24))   # miss: served by the trace itself
        assert calls["n"] == 1
        with no_grad():
            second = cf(decoder_input(seed=24))  # hit: plan replay, no fn call
        assert calls["n"] == 1
        assert np.array_equal(first.data, second.data)

    def test_describe_lists_ops(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input())
        text = cm.plans[0].describe()
        assert "MatMul" in text and "Softplus" in text and "n_inplace" in text


class TestForwardEquivalence:
    @pytest.mark.parametrize("policy", ["float64", "float32"])
    def test_forward_bitwise_equal(self, policy):
        imnet = make_imnet(policy)
        dtype = np.dtype(policy)
        cm = rc.compile(imnet)
        with precision(policy):
            x = decoder_input(dtype=dtype, seed=1)
            with inference_mode():
                eager = imnet(x)
                compiled = cm(x)
        assert compiled.dtype == dtype
        assert np.array_equal(eager.data, compiled.data)

    def test_fresh_data_replays_not_bakes(self):
        """A cached plan must recompute from live inputs, not trace-time data."""
        imnet = make_imnet()
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input(seed=1))
            x2 = decoder_input(seed=2)
            assert np.array_equal(imnet(x2).data, cm(x2).data)
        assert cm.stats()["n_plans"] == 1

    def test_engine_compiled_decode_bitwise_equal(self):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
        lowres = np.random.default_rng(0).standard_normal((2, 4, 2, 8, 8))
        eager = InferenceEngine(model)
        compiled = InferenceEngine(model, compile=True)
        out_e = eager.predict_grid(lowres, (4, 16, 16))
        out_c = compiled.predict_grid(lowres, (4, 16, 16))
        assert np.array_equal(out_e, out_c)
        stats = compiled.compile_stats
        assert stats["plan_hits"] > 0 and stats["runtime_allocs"] == 0

    def test_engine_compiled_query_points_bitwise_equal(self):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
        rng = np.random.default_rng(3)
        lowres = rng.standard_normal((1, 4, 2, 8, 8))
        pts = rng.random((257, 3))
        out_e = InferenceEngine(model).query_points(lowres, pts)
        out_c = InferenceEngine(model, compile=True).query_points(lowres, pts)
        assert np.array_equal(out_e, out_c)


class TestDerivativeEquivalence:
    @staticmethod
    def derivative_stack(imnet):
        """First and second coordinate derivatives through the decoder MLP —
        the exact op pattern ``forward_with_derivatives`` builds for the
        equation loss."""

        def fn(x):
            y = imnet(x)
            g1 = grad(ops.sum(y), x, create_graph=True)
            d_dt = ops.getitem(g1, (slice(None), slice(None), 0))
            g2 = grad(ops.sum(d_dt), x, create_graph=True)
            return y, g1, g2

        return fn

    @pytest.mark.parametrize("policy", ["float64", "float32"])
    def test_second_order_bitwise_equal(self, policy):
        imnet = make_imnet(policy)
        dtype = np.dtype(policy)
        fn = self.derivative_stack(imnet)
        cf = rc.compile_fn(fn)
        with precision(policy):
            x = decoder_input((1, 32, 9), seed=4, dtype=dtype, requires_grad=True)
            eager = fn(x)
            compiled = cf(x)  # traces
            x2 = decoder_input((1, 32, 9), seed=5, dtype=dtype, requires_grad=True)
            eager2, compiled2 = fn(x2), cf(x2)  # replays
        for e, c in zip((*eager, *eager2), (*compiled, *compiled2)):
            assert np.array_equal(e.data, c.data)
        assert cf.stats() == {**cf.stats(), "n_plans": 1, "runtime_allocs": 0}

    def test_model_forward_with_derivatives_unchanged_by_compiled_decoder(self):
        """Installing a (backward=False) compiled decoder must leave the
        second-order equation-loss stack on the eager path, bit-identical."""
        from repro.pde import RayleighBenard2D

        config = MeshfreeFlowNetConfig.tiny()
        model = MeshfreeFlowNet(config)
        rng = np.random.default_rng(0)
        lowres = Tensor(rng.standard_normal((1, 4, 2, 8, 8)))
        coords = Tensor(rng.random((1, 16, 3)), requires_grad=True)
        pde = RayleighBenard2D(rayleigh=1e6)
        pred_e, values_e = model.forward_with_derivatives(lowres, coords, pde)
        model.compile_decoder()
        pred_c, values_c = model.forward_with_derivatives(lowres, coords, pde)
        assert np.array_equal(pred_e.data, pred_c.data)
        for key in values_e:
            assert np.array_equal(values_e[key].data, values_c[key].data), key
        model.uncompile_decoder()


class TestCompiledBackward:
    def test_first_order_param_grads_bitwise_equal(self):
        imnet = make_imnet()
        x = decoder_input(seed=6)
        target = decoder_input((2, 64, 4), seed=7)

        def loss_through(decoder):
            return ops.mean(ops.square(ops.sub(decoder(x), target)))

        loss_e = loss_through(imnet)
        loss_e.backward()
        ref = {name: p.grad.copy() for name, p in imnet.named_parameters()}
        imnet.zero_grad()

        cm = rc.compile(imnet, backward=True)
        loss_c = loss_through(cm)
        loss_c.backward()
        assert np.array_equal(loss_e.data, loss_c.data)
        for name, p in imnet.named_parameters():
            assert np.array_equal(ref[name], p.grad), name

    def test_input_grads_bitwise_equal(self):
        imnet = make_imnet()
        x = decoder_input(seed=8, requires_grad=True)
        ge = grad(ops.sum(imnet(x)), x)
        cm = rc.compile(imnet, backward=True)
        gc = grad(ops.sum(cm(x)), x)
        assert np.array_equal(ge.data, gc.data)

    def test_double_backward_bitwise_equal(self):
        """grad-of-grad through compiled plans matches eager bitwise.

        This is the equation-loss pattern: differentiate the decode with
        respect to its input with ``create_graph=True``, build a loss on
        that derivative, then take the parameter VJP through it."""
        imnet = make_imnet()
        x = decoder_input(seed=9, requires_grad=True)

        def second_order(decoder):
            gx = grad(ops.sum(decoder(x)), x, create_graph=True)
            return ops.mean(ops.square(gx))

        loss_e = second_order(imnet)
        loss_e.backward()
        # The last layer's bias has no second-order gradient (d(dy/dx)/db
        # is zero): its grad legitimately stays None on both paths.
        ref = {name: None if p.grad is None else p.grad.copy()
               for name, p in imnet.named_parameters()}
        imnet.zero_grad()

        cm = rc.compile(imnet, backward=True)
        loss_c = second_order(cm)
        loss_c.backward()
        assert np.array_equal(loss_e.data, loss_c.data)
        for name, p in imnet.named_parameters():
            if ref[name] is None:
                assert p.grad is None, name
            else:
                assert np.array_equal(ref[name], p.grad), name
        # forward + input-grad + its VJP: three plan levels were built
        assert cm.stats()["n_grad_plans"] >= 1
        assert cm.stats()["fallbacks"] == {}

    def test_inplace_weight_update_visible_without_retrace(self):
        imnet = make_imnet()
        cm = rc.compile(imnet, backward=True)
        x = decoder_input(seed=10, requires_grad=True)
        grad(ops.sum(cm(x)), x)
        n_runners = cm.stats()["n_grad_plans"]
        for p in imnet.parameters():
            p.data[...] = p.data * 0.5  # optimizer-style in-place update
        with inference_mode():
            assert np.array_equal(imnet(x.detach()).data, cm(x.detach()).data)
        assert cm.stats()["n_grad_plans"] == n_runners  # no invalidation

    def test_trainer_compile_prediction_only_bit_identical(self, tiny_dataset):
        def run(compile_flag):
            model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=3))
            cfg = TrainerConfig(epochs=1, batch_size=1, world_size=2, gamma=0.0,
                                steps_per_epoch=2, compile=compile_flag)
            Trainer(model, tiny_dataset, config=cfg).train()
            return model

        eager, compiled = run(False), run(True)
        # Training gradients flow through the fused CompiledTrainingStep;
        # the decoder wrapper only serves no-grad paths, so backward=False.
        assert compiled._decoder is not None and not compiled._decoder.backward
        for pe, pc in zip(eager.parameters(), compiled.parameters()):
            assert np.array_equal(pe.data, pc.data)


class TestKernelExactness:
    """Fused lowerings whose natural fast form would diverge from eager."""

    def test_relu_matches_eager_including_zero_sign(self):
        x = Tensor(np.array([-3.0, -0.0, 0.0, 2.0, -1e-300]))
        cf = rc.compile_fn(lambda t: ops.relu(t))
        with no_grad():
            compiled = cf(x)
        eager = ops.relu(x)
        assert np.array_equal(eager.data, compiled.data)
        assert np.array_equal(np.signbit(eager.data), np.signbit(compiled.data))

    @pytest.mark.parametrize("slope", [0.01, 1.0, 1.5, -0.5])
    def test_leaky_relu_all_slopes_match_eager(self, slope):
        """Slopes outside [0, 1] break the fused max identity and must take
        the eager fallback path instead of silently diverging."""
        x = Tensor(np.random.default_rng(0).standard_normal(128))
        cf = rc.compile_fn(lambda t: ops.leaky_relu(t, slope))
        with no_grad():
            compiled = cf(x)
        assert np.array_equal(ops.leaky_relu(x, slope).data, compiled.data)

    def test_live_buffer_constants_are_not_folded(self):
        """Eval-mode BatchNorm arithmetic on running statistics is all-constant
        at trace time, but the statistics are *live* module state: an
        in-place update (load_state_dict writes in place) must reach
        replays, so folding may not snapshot them."""
        bn = nn.Sequential(nn.BatchNorm3d(3)).eval()
        cm = rc.compile(bn)
        rng = np.random.default_rng(5)
        x = Tensor(rng.standard_normal((2, 3, 2, 4, 4)))
        with inference_mode():
            first = cm(x)
            assert np.array_equal(bn(x).data, first.data)
            # in-place running-stat update, array identity unchanged
            bn[0].running_var[...] = bn[0].running_var * 3.0
            bn[0].running_mean[...] = bn[0].running_mean + 0.25
            second = cm(x)
            assert np.array_equal(bn(x).data, second.data)
        assert not np.array_equal(first.data, second.data)

    def test_unfreezing_a_parameter_invalidates_grad_plans(self):
        """A VJP plan traced while a parameter was frozen bakes a None grad
        slot for it; un-freezing must re-trace, not silently skip."""
        imnet = make_imnet()
        frozen = imnet.net[0].bias
        frozen.requires_grad = False
        cm = rc.compile(imnet, backward=True)
        x = decoder_input(seed=25, requires_grad=True)
        loss = ops.sum(cm(x))
        imnet.zero_grad()
        loss.backward()
        assert frozen.grad is None
        frozen.requires_grad = True
        imnet.zero_grad()
        ops.sum(cm(x)).backward()
        reference = make_imnet()
        reference.load_state_dict(imnet.state_dict())
        ops.sum(reference(x)).backward()
        assert frozen.grad is not None
        for (name, p), (_, q) in zip(imnet.named_parameters(),
                                     reference.named_parameters()):
            assert np.array_equal(p.grad, q.grad), name


class TestPlanCache:
    def test_hit_on_repeat_and_miss_on_shape_change(self):
        cm = rc.compile(make_imnet())
        with inference_mode():
            cm(decoder_input((2, 64, 9)))        # miss: served by the trace
            cm(decoder_input((2, 64, 9), seed=2))
            stats = cm.stats()
            assert stats["n_plans"] == 1 and stats["plan_hits"] == 1
            cm(decoder_input((2, 33, 9)))
            assert cm.stats()["n_plans"] == 2

    def test_per_policy_plans(self):
        """The same wrapper serves both policies with separate plans."""
        imnet64 = make_imnet()
        cm = rc.compile(imnet64)
        with inference_mode():
            cm(decoder_input())
            with precision("float32"):
                # float64 weights + float32 input: eager promotes; the plan
                # must be traced under the float32 policy key, not reuse the
                # float64 plan.
                x32 = decoder_input(dtype=np.float32, seed=11)
                out = cm(x32)
                assert np.array_equal(out.data, imnet64(x32).data)
        assert cm.stats()["n_plans"] == 2

    def test_invalidation_on_weight_rebind(self):
        # Built explicitly float64 so the float32 cast below re-materialises
        # the weights under any ambient policy (a same-dtype cast is a no-op).
        imnet = make_imnet("float64")
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input())
            assert cm.stats()["n_plans"] == 1
            imnet.astype("float32")  # re-materialises every parameter array
            x32 = decoder_input(dtype=np.float32, seed=12)
            with precision("float32"):
                out = cm(x32)
                assert np.array_equal(out.data, imnet(x32).data)
        stats = cm.stats()
        assert stats["n_plans"] == 1  # old plan dropped, one fresh plan

    def test_invalidation_on_mode_flip(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)
        with inference_mode():
            cm(decoder_input())
        imnet.train()
        with inference_mode():
            cm(decoder_input())
        assert cm.stats()["n_plans"] == 1  # re-traced under the new mode

    def test_lru_bound(self):
        cm = rc.compile(make_imnet(), max_plans=2)
        with inference_mode():
            for n in (8, 16, 24):
                cm(decoder_input((1, n, 9), seed=n))
        assert cm.stats()["n_plans"] == 2

    def test_grad_fallback_without_backward(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)  # backward=False
        x = decoder_input(seed=13, requires_grad=True)
        g = grad(ops.sum(cm(x)), x)  # must fall back eagerly, not break
        assert np.array_equal(g.data, grad(ops.sum(imnet(x)), x).data)
        assert cm.stats()["eager_calls"] >= 1 and cm.stats()["n_plans"] == 0

    def test_impure_modules_rejected(self):
        dropout_net = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        with pytest.raises(ValueError, match="Dropout"):
            rc.compile(dropout_net)
        bn = nn.Sequential(nn.BatchNorm3d(3))
        with pytest.raises(ValueError, match="BatchNorm"):
            rc.compile(bn)
        rc.compile(bn.eval())  # fine in eval mode


class TestAllocationRegression:
    #: Steady-state budget: one NumPy buffered-iteration scratch
    #: (``np.getbufsize()`` elements, ~64 KB, constant in the problem size —
    #: ufuncs use it for broadcast operands such as bias rows even with
    #: ``out=``) plus Python-object noise.  Any arena rot shows up as
    #: per-op *intermediate* arrays, which at the test size are ~2 MB each.
    STEADY_STATE_BUDGET = 192 * 1024

    def test_steady_state_decode_allocates_nothing(self):
        """The buffer-arena pin: a warmed compiled ImNet decode step must not
        allocate arrays — neither plan-reported fallback allocations nor
        tracemalloc peaks beyond the constant NumPy-internal budget."""
        imnet = make_imnet()
        cm = rc.compile(imnet, copy_outputs=False)
        x = decoder_input((4, 4096, 9), seed=14)
        with inference_mode():
            cm(x)  # warm: trace + arena allocation
            plan = cm.plans[0]
            before = plan.runtime_allocs
            tracemalloc.start()
            for _ in range(3):
                cm(x)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert plan.runtime_allocs == before  # no fallback allocations
        assert peak < self.STEADY_STATE_BUDGET, f"compiled decode allocated {peak} bytes"

    def test_eager_same_step_allocates_orders_more(self):
        """Companion measurement keeping the pin honest: the same workload on
        the eager tape allocates an intermediate per primitive — far above
        the compiled budget, so the threshold separates the two regimes."""
        imnet = make_imnet()
        x = decoder_input((4, 4096, 9), seed=14)
        with inference_mode():
            imnet(x)
            tracemalloc.start()
            for _ in range(3):
                imnet(x)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert peak > 8 * self.STEADY_STATE_BUDGET

    def test_fused_chain_and_arena_stats(self):
        cm = rc.compile(make_imnet(), copy_outputs=False)
        with inference_mode():
            cm(decoder_input())
        stats = cm.plans[0].stats
        assert stats.n_fallback == 0
        assert stats.n_inplace >= 5          # bias adds + activations fused
        assert stats.n_buffers <= 3          # whole MLP flows through <= 3 buffers
        assert stats.arena_bytes > 0

    def test_derivative_plan_folds_and_eliminates(self):
        imnet = make_imnet()
        fn = TestDerivativeEquivalence.derivative_stack(imnet)
        cf = rc.compile_fn(fn)
        cf(decoder_input((1, 32, 9), seed=4, requires_grad=True))
        stats = cf.plans[0].stats
        assert stats.n_folded > 0            # constant grad seeds fold away
        assert stats.n_dead > 0              # unused forward tail eliminated
        assert stats.n_fallback == 0


class TestPowLowering:
    """Satellite: small integer exponents route through multiplies."""

    def test_values_match_multiplies(self):
        x = Tensor(np.random.default_rng(0).standard_normal(64))
        assert np.array_equal(ops.pow(x, 2.0).data, (x.data * x.data))
        assert np.array_equal(ops.pow(x, 3.0).data, (x.data * x.data) * x.data)
        assert np.array_equal(ops.pow(x, 1.0).data, x.data)
        positive = ops.abs(x)
        assert np.array_equal(ops.pow(positive, 0.5).data, np.sqrt(positive.data))

    @pytest.mark.parametrize("exponent", [2.0, 3.0, 1.0])
    def test_gradients_match_closed_form(self, exponent):
        x = Tensor(np.random.default_rng(1).standard_normal(32), requires_grad=True)
        g = grad(ops.sum(ops.pow(x, exponent)), x)
        expected = exponent * x.data ** (exponent - 1.0)
        assert np.allclose(g.data, expected, rtol=1e-12, atol=0)

    def test_second_order_still_works(self):
        x = Tensor(np.random.default_rng(2).standard_normal(16), requires_grad=True)
        g1 = grad(ops.sum(ops.pow(x, 3.0)), x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        assert np.allclose(g2.data, 6.0 * x.data, rtol=1e-12, atol=1e-12)


class TestFusionTier:
    """The codegen fusion tier: elementwise regions become one generated
    callable each, with replays bit-identical and allocation-free."""

    def test_decode_plan_has_codegen_regions(self):
        imnet = make_imnet()
        cm = rc.compile(imnet, copy_outputs=False)
        x = decoder_input()
        with inference_mode():
            y = cm(x)
            stats = cm.plans[0].stats
            assert stats.n_codegen_regions >= 1
            # A region is worth emitting only when it spans >= 2 ops.
            assert stats.n_codegen_ops >= 2 * stats.n_codegen_regions
            assert stats.codegen_bytes > 0
            assert np.array_equal(y.data, imnet(x).data)

    def test_fused_regions_bitwise_equal_across_replays(self):
        imnet = make_imnet()
        cm = rc.compile(imnet, copy_outputs=True)
        xs = [decoder_input(seed=s) for s in (3, 4, 5)]
        with inference_mode():
            compiled = [cm(x).data for x in xs]
            eager = [imnet(x).data for x in xs]
        assert cm.plans[0].stats.n_codegen_regions >= 1
        for c, e in zip(compiled, eager):
            assert np.array_equal(c, e)

    def test_fused_regions_steady_state_allocates_nothing(self):
        """PR 5's arena pin, extended to the codegen tier: a warmed plan
        *containing generated regions* must stay allocation-free."""
        imnet = make_imnet()
        cm = rc.compile(imnet, copy_outputs=False)
        x = decoder_input((4, 4096, 9), seed=14)
        with inference_mode():
            cm(x)  # warm: trace + arena + region compilation
            plan = cm.plans[0]
            assert plan.stats.n_codegen_regions >= 1
            before = plan.runtime_allocs
            tracemalloc.start()
            for _ in range(3):
                cm(x)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        assert plan.runtime_allocs == before
        assert peak < TestAllocationRegression.STEADY_STATE_BUDGET, \
            f"fused-region replay allocated {peak} bytes"


class TestDump:
    """Program and plan pretty-printers: ops, liveness, buffers, regions."""

    def test_program_dump_lists_ops_and_liveness(self):
        def f(a, b):
            return ops.mul(ops.add(a, b), b)

        program, _, _ = rc.trace(
            f, Tensor(np.ones(4)), Tensor(np.full(4, 2.0)))
        text = program.dump()
        assert "Add" in text and "Mul" in text
        assert "dies@" in text
        assert "output" in text

    def test_plan_dump_shows_buffers_and_regions(self):
        cm = rc.compile(make_imnet(), copy_outputs=False)
        with inference_mode():
            cm(decoder_input())
        text = cm.plans[0].dump()
        assert "arena:" in text
        assert "buf[" in text
        assert "region=" in text
        assert "regions)" in text  # header counts fused regions


class TestFallbackWarnings:
    """Eager degradation is never silent: one warning per (wrapper, reason),
    per-call counts in ``stats()`` and the metrics registry."""

    def test_unsupported_grad_fallback_warns_once_and_counts(self):
        imnet = make_imnet()
        cm = rc.compile(imnet)  # backward=False: grads are the opt-out
        x = decoder_input(seed=13, requires_grad=True)
        with pytest.warns(rc.CompileFallbackWarning, match="unsupported"):
            grad(ops.sum(cm(x)), x)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            grad(ops.sum(cm(x)), x)
        assert cm.stats()["fallbacks"] == {"unsupported": 2}

    def test_trace_failure_warns_and_counts(self):
        def hostile(a):
            raise RuntimeError("untraceable")

        cf = rc.compile_fn(hostile)
        with pytest.raises(RuntimeError):
            with pytest.warns(rc.CompileFallbackWarning, match="trace-failure"):
                cf(Tensor(np.ones(3)))
        assert cf.stats()["fallbacks"]["trace-failure"] == 1

    def test_fallback_counts_reach_metrics_registry(self):
        from repro.obs.metrics import REGISTRY

        imnet = make_imnet()
        cm = rc.compile(imnet)
        x = decoder_input(seed=13, requires_grad=True)
        with pytest.warns(rc.CompileFallbackWarning):
            grad(ops.sum(cm(x)), x)
        snap = REGISTRY.snapshot()["gauges"]
        keys = [k for k in snap
                if k.startswith("compile.fallbacks{") and 'reason="unsupported"' in k]
        assert keys, f"no fallback gauge in {sorted(snap)[:10]}..."
        assert any(snap[k] >= 1 for k in keys)


class TestCompiledTrainingStep:
    """The full physics-constrained training step as one compiled program."""

    @staticmethod
    def _scenario_setup():
        from repro.core.losses import LossWeights, compute_losses
        from repro.scenarios import get_scenario

        sc = get_scenario("rayleigh_benard")
        hr = sc.generate(nt=8, nz=8, nx=16, seed=7)
        ds = sc.make_dataset(results=hr, lr_factors=(2, 2, 2),
                             crop_shape_lr=(2, 4, 4), n_points=8,
                             samples_per_epoch=8, seed=0)
        return sc, ds, sc.make_pde_system(), LossWeights(gamma=0.0125), compute_losses

    def test_equation_loss_step_bitwise_equal(self):
        """Losses, per-constraint norms, every parameter gradient and every
        BatchNorm running-stat write of a *replayed* compiled step match
        the eager loss + ``backward()`` sequence bit-for-bit."""
        sc, ds, pde, weights, compute_losses = self._scenario_setup()
        m_eager, m_comp = sc.build_model("tiny"), sc.build_model("tiny")
        for pe, pc in zip(m_eager.parameters(), m_comp.parameters()):
            pc.data[...] = pe.data
        step = rc.CompiledTrainingStep(m_comp, pde, weights, loss_scale=0.5)
        for call in range(3):  # call 0 traces, 1..2 replay
            batch = ds.sample_batch([2 * call, 2 * call + 1], epoch=0)
            m_eager.zero_grad()
            m_comp.zero_grad()
            dt = m_eager.dtype
            total, bd_e = compute_losses(
                m_eager,
                Tensor(np.asarray(batch.lowres, dtype=dt)),
                Tensor(np.asarray(batch.coords, dtype=dt), requires_grad=True),
                Tensor(np.asarray(batch.targets, dtype=dt)),
                pde, weights, coord_scales=batch.coord_scales)
            (total * 0.5).backward()
            bd_c = step(batch)
            assert (bd_e.total, bd_e.prediction, bd_e.equation) == \
                   (bd_c.total, bd_c.prediction, bd_c.equation)
            assert bd_e.per_constraint == bd_c.per_constraint
            for pe, pc in zip(m_eager.parameters(), m_comp.parameters()):
                assert (pe.grad is None) == (pc.grad is None)
                if pe.grad is not None:
                    assert np.array_equal(pe.grad, pc.grad)
            for me, mc in zip(m_eager.modules(), m_comp.modules()):
                for be, bc in zip(me._buffers.values(), mc._buffers.values()):
                    assert np.array_equal(be, bc)
        stats = step.stats()
        assert stats["n_plans"] == 1
        assert stats["plan_hits"] == 2
        assert stats["fallbacks"] == {}

    def test_double_backward_region_present(self):
        """With the equation loss on, the traced step differentiates through
        its own derivative stack — the plan must exist (no fallback), and
        gradients for the *encoder* parameters must be populated too."""
        sc, ds, pde, weights, _ = self._scenario_setup()
        model = sc.build_model("tiny")
        step = rc.CompiledTrainingStep(model, pde, weights)
        step(ds.sample_batch([0, 1], epoch=0))
        n_with_grad = sum(p.grad is not None for p in model.parameters())
        assert n_with_grad >= len(model.parameters()) - 2
        assert step.stats()["n_plans"] == 1
        assert step.stats()["fallbacks"] == {}

    def test_parameter_rebind_invalidates_plans(self):
        sc, ds, pde, weights, _ = self._scenario_setup()
        model = sc.build_model("tiny")
        step = rc.CompiledTrainingStep(model, pde, weights)
        batch = ds.sample_batch([0, 1], epoch=0)
        step(batch)
        assert step.stats()["n_plans"] == 1
        p = model.parameters()[0]
        p.data = p.data.copy()  # rebind: new array identity
        model.zero_grad()
        step(batch)
        stats = step.stats()
        assert stats["retraces"] == 2  # fingerprint change forced a re-trace

    def test_active_dropout_degrades_loudly_to_eager(self):
        sc, ds, pde, weights, _ = self._scenario_setup()
        model = sc.build_model("tiny")
        model.imnet.net = nn.Sequential(nn.Dropout(0.5), model.imnet.net)
        step = rc.CompiledTrainingStep(model, pde, weights)
        batch = ds.sample_batch([0, 1], epoch=0)
        with pytest.warns(rc.CompileFallbackWarning, match="impure"):
            bd = step(batch)
        assert np.isfinite(bd.total)
        stats = step.stats()
        assert stats["n_plans"] == 0
        assert stats["fallbacks"]["impure"] == 1
