"""Trainer, evaluation helpers, checkpointing, history."""

import gc
import warnings

import numpy as np
import pytest

from repro.backend import precision
from repro.baselines import TrilinearBaseline
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.optim import Adam, ExponentialLR
from repro.pde import divergence_free_system
from repro.training import (
    Trainer,
    TrainerConfig,
    TrainingHistory,
    evaluate_model,
    load_checkpoint,
    pointwise_errors,
    read_metadata,
    save_checkpoint,
)


@pytest.fixture
def trainer(tiny_dataset):
    model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
    config = TrainerConfig(epochs=2, batch_size=2, gamma=0.0, learning_rate=5e-3,
                           steps_per_epoch=2)
    return Trainer(model, tiny_dataset, pde_system=None, config=config)


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            TrainerConfig(gamma=-1.0)

    def test_defaults_match_paper(self):
        cfg = TrainerConfig()
        assert cfg.learning_rate == pytest.approx(1e-2)
        assert cfg.optimizer == "adam"
        assert cfg.gamma == pytest.approx(0.0125)


class TestTraining:
    def test_history_recorded(self, trainer):
        history = trainer.train()
        assert len(history) == 2
        assert {"loss", "prediction_loss", "equation_loss", "wall_time"} <= set(history[0])

    def test_loss_decreases_on_overfit_task(self, tiny_dataset):
        """Repeated Adam steps on one fixed batch must reduce the prediction loss."""
        from repro.autodiff import Tensor
        from repro.core import LossWeights, compute_losses

        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        optimizer = Adam(model.parameters(), lr=1e-2)
        batch = tiny_dataset.sample_batch([0, 1], epoch=0)
        weights = LossWeights(gamma=0.0)
        losses = []
        for _ in range(12):
            optimizer.zero_grad()
            total, breakdown = compute_losses(
                model, Tensor(batch.lowres), Tensor(batch.coords), Tensor(batch.targets),
                None, weights, coord_scales=batch.coord_scales)
            total.backward()
            optimizer.step()
            losses.append(breakdown.total)
        assert losses[-1] < 0.7 * losses[0]

    def test_equation_loss_tracked_when_gamma_positive(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(epochs=1, batch_size=1, gamma=0.05, steps_per_epoch=1)
        trainer = Trainer(model, tiny_dataset, pde_system=divergence_free_system(), config=config)
        history = trainer.train()
        assert history[0]["equation_loss"] > 0.0

    @pytest.mark.float64_default
    def test_world_size_equivalent_to_large_batch(self, tiny_dataset):
        """world_size=2 with batch 1 must equal world_size=1 with batch 2 (same samples).

        Group normalisation is used instead of batch normalisation so that the
        forward pass is independent of how the global batch is sharded (the
        same caveat applies to real DistributedDataParallel training).
        Pinned at float64 round-off (1e-10): under a float32 policy the
        forward genuinely runs in float32 (batches are cast to the model
        dtype) and shard-order rounding is of order 1e-7 instead.
        """
        def run(world_size, batch_size):
            model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=3, unet_norm="group"))
            config = TrainerConfig(epochs=1, batch_size=batch_size, world_size=world_size,
                                   gamma=0.0, steps_per_epoch=2, learning_rate=1e-2)
            t = Trainer(model, tiny_dataset, config=config)
            t.train()
            return np.concatenate([p.data.ravel() for p in model.parameters()])

        params_ddp = run(world_size=2, batch_size=1)
        params_single = run(world_size=1, batch_size=2)
        assert np.allclose(params_ddp, params_single, atol=1e-10)

    def test_continuing_training_appends_history(self, trainer):
        trainer.train(1)
        trainer.train(1)
        assert len(trainer.history) == 2
        assert trainer.history[1]["epoch"] == 1

    def test_validation_loss_recorded(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(epochs=1, batch_size=1, gamma=0.0, steps_per_epoch=1)
        trainer = Trainer(model, tiny_dataset, config=config, val_dataset=tiny_dataset)
        history = trainer.train()
        assert "val_loss" in history[0]

    def test_grad_clipping_path(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(epochs=1, batch_size=1, gamma=0.0, steps_per_epoch=1, grad_clip=0.1)
        Trainer(model, tiny_dataset, config=config).train()


class TestEvaluation:
    def test_trainer_evaluate_returns_report(self, trainer):
        trainer.train(1)
        report = trainer.evaluate(label="test")
        assert report.label == "test"
        assert np.isfinite(report.average_r2)

    def test_evaluate_model_trilinear(self, tiny_dataset):
        report = evaluate_model(TrilinearBaseline(), tiny_dataset, label="tri")
        assert np.isfinite(report.average_r2)

    def test_pointwise_errors_keys(self, tiny_dataset):
        errors = pointwise_errors(TrilinearBaseline(), tiny_dataset)
        assert {"mae", "rmse", "mae_T", "rmse_u"} <= set(errors)
        assert errors["mae"] >= 0


class TestHistory:
    def test_series_and_last(self):
        h = TrainingHistory()
        h.append(epoch=0, loss=1.0)
        h.append(epoch=1, loss=0.5)
        assert np.allclose(h.series("loss"), [1.0, 0.5])
        assert h.last("loss") == 0.5
        assert h.last("missing", default=-1) == -1

    def test_roundtrip(self):
        h = TrainingHistory()
        h.append(epoch=0, loss=1.0)
        h2 = TrainingHistory.from_dict(h.to_dict())
        assert h2[0]["loss"] == 1.0

    def test_summary_string(self):
        h = TrainingHistory()
        assert "empty" in h.summary()
        h.append(loss=2.0)
        assert "1 epochs" in h.summary()


class TestSchedulerWiring:
    def test_scheduler_steps_each_epoch(self, tiny_dataset):
        """config.scheduler drives the optimizer lr; history records the used lr."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(epochs=3, batch_size=1, gamma=0.0, steps_per_epoch=1,
                               learning_rate=1e-2, scheduler="exponential",
                               scheduler_kwargs={"gamma": 0.5})
        trainer = Trainer(model, tiny_dataset, config=config)
        history = trainer.train()
        assert [r["lr"] for r in history.records] == pytest.approx([1e-2, 5e-3, 2.5e-3])

    def test_step_scheduler(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(epochs=4, batch_size=1, gamma=0.0, steps_per_epoch=1,
                               learning_rate=1.0, scheduler="step",
                               scheduler_kwargs={"step_size": 2, "gamma": 0.1})
        history = Trainer(model, tiny_dataset, config=config).train()
        assert [r["lr"] for r in history.records] == pytest.approx([1.0, 1.0, 0.1, 0.1])

    def test_no_scheduler_keeps_lr_constant(self, trainer):
        history = trainer.train()
        assert len({r["lr"] for r in history.records}) == 1


class TestOptimizerConfig:
    def test_momentum_is_configurable(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(optimizer="sgd", momentum=0.3)
        trainer = Trainer(model, tiny_dataset, config=config)
        assert trainer.optimizer.momentum == pytest.approx(0.3)

    def test_momentum_default_matches_seed(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        trainer = Trainer(model, tiny_dataset, config=TrainerConfig(optimizer="sgd"))
        assert trainer.optimizer.momentum == pytest.approx(0.9)


class TestModeRestore:
    def test_evaluate_preserves_eval_mode(self, trainer):
        trainer.model.eval()
        trainer.evaluate()
        assert not trainer.model.training

    def test_evaluate_preserves_train_mode(self, trainer):
        trainer.model.train()
        trainer.evaluate()
        assert trainer.model.training

    def test_validation_loss_preserves_eval_mode(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        config = TrainerConfig(epochs=1, batch_size=1, gamma=0.0, steps_per_epoch=1)
        trainer = Trainer(model, tiny_dataset, config=config, val_dataset=tiny_dataset)
        model.eval()
        trainer.validation_loss()
        assert not model.training

    def test_evaluate_model_helper_preserves_mode(self, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        model.eval()
        evaluate_model(model, tiny_dataset)
        assert not model.training


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path, tiny_dataset):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=1))
        opt = Adam(model.parameters(), lr=1e-3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, opt, metadata={"epoch": 3})

        model2 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=2))
        opt2 = Adam(model2.parameters(), lr=1.0)
        meta = load_checkpoint(path, model2, opt2)
        assert meta["epoch"] == 3
        assert opt2.lr == pytest.approx(1e-3)
        for p1, p2 in zip(model.parameters(), model2.parameters()):
            assert np.allclose(p1.data, p2.data)

    def test_checkpoint_without_optimizer(self, tmp_path):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        path = tmp_path / "model_only.npz"
        save_checkpoint(path, model)
        meta = load_checkpoint(path, MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=9)))
        assert meta == {}

    def test_load_preserves_model_dtype(self, tmp_path):
        """A float64 checkpoint loaded into a float32-cast model stays float32."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=1))
        opt = Adam(model.parameters(), lr=1e-3)
        for p in model.parameters():
            p.grad = np.ones_like(p.data)
        opt.step()  # materialise float64 Adam moments in the checkpoint
        path = tmp_path / "f64.npz"
        save_checkpoint(path, model, opt)

        model32 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=2)).astype("float32")
        opt32 = Adam(model32.parameters(), lr=1e-3)
        load_checkpoint(path, model32, opt32)
        assert all(p.data.dtype == np.float32 for p in model32.parameters())
        # the float64 checkpoint moments are cast to the parameter precision
        assert all(s["m"].dtype == np.float32 for s in opt32.state.values())

    def test_strict_dtype_rejects_mismatch(self, tmp_path):
        with precision("float64"):  # explicit: the policy may default to float32 in CI
            model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=1))
        path = tmp_path / "f64b.npz"
        save_checkpoint(path, model)
        model32 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=2)).astype("float32")
        with pytest.raises(ValueError):
            load_checkpoint(path, model32, strict_dtype=True)

    def test_scheduler_state_roundtrip(self, tmp_path):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=1))
        opt = Adam(model.parameters(), lr=1e-2)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        path = tmp_path / "sched.npz"
        save_checkpoint(path, model, opt, scheduler=sched)

        model2 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=2))
        opt2 = Adam(model2.parameters(), lr=1e-2)
        sched2 = ExponentialLR(opt2, gamma=0.5)
        load_checkpoint(path, model2, opt2, scheduler=sched2)
        assert sched2.last_epoch == 2
        assert opt2.lr == pytest.approx(2.5e-3)

    def test_archive_handle_is_closed(self, tmp_path):
        """load_checkpoint must close the .npz archive (the seed leaked it)."""
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        path = tmp_path / "closed.npz"
        save_checkpoint(path, model)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            load_checkpoint(path, model)
            gc.collect()

    def test_read_metadata_only(self, tmp_path):
        model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())
        path = tmp_path / "meta.npz"
        save_checkpoint(path, model, metadata={"epoch": 12, "note": "x"})
        assert read_metadata(path) == {"epoch": 12, "note": "x"}
