"""Shared fixtures for the test-suite.

Also home of the ``float64_default`` marker: a handful of tests pin
*round-off-level* float64 behaviour (e.g. tiled == direct to ~1e-15) and
are skipped when the ``REPRO_DEFAULT_DTYPE`` environment variable switches
the process-wide precision policy (the float32 CI leg); their float32
counterparts live in ``test_backend_precision.py`` with float32-appropriate
tolerances.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.data import SuperResolutionDataset
from repro.simulation import synthetic_convection


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "float64_default: pins float64-default round-off behaviour; skipped "
        "when REPRO_DEFAULT_DTYPE selects a different precision policy",
    )
    config.addinivalue_line(
        "markers",
        "scenario: cross-scenario conformance matrix (tests/scenarios/); runs "
        "in a dedicated CI job under both precision policies",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_DEFAULT_DTYPE", "float64") in ("", "float64"):
        return
    skip = pytest.mark.skip(
        reason="pins float64-default round-off; REPRO_DEFAULT_DTYPE overrides the policy")
    for item in items:
        if "float64_default" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> MeshfreeFlowNetConfig:
    return MeshfreeFlowNetConfig.tiny()


@pytest.fixture
def tiny_model(tiny_config) -> MeshfreeFlowNet:
    return MeshfreeFlowNet(tiny_config)


@pytest.fixture(scope="session")
def synthetic_result():
    """A small synthetic convection dataset shared across tests (read-only)."""
    return synthetic_convection(nt=16, nz=16, nx=64, seed=3)


@pytest.fixture
def tiny_dataset(synthetic_result) -> SuperResolutionDataset:
    return SuperResolutionDataset(
        synthetic_result,
        lr_factors=(2, 2, 4),
        crop_shape_lr=(4, 4, 8),
        n_points=32,
        samples_per_epoch=8,
        seed=0,
    )


@pytest.fixture
def tiny_lowres(rng) -> Tensor:
    return Tensor(rng.standard_normal((2, 4, 2, 8, 8)))


@pytest.fixture
def tiny_coords(rng) -> Tensor:
    return Tensor(rng.random((2, 12, 3)), requires_grad=True)
