"""DistributedTrainer: sharding, bucketed all-reduce, bit-identical resume.

The bit-identity tests enforce the PR's headline acceptance criterion: a
run that is interrupted, checkpointed, reloaded into a *fresh* trainer and
continued must produce bitwise-equal parameters, optimizer state and
history to an uninterrupted run — in the float64 policy, the float32
policy, and the float32-with-float64-master-weights mixed-precision mode.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.backend import precision
from repro.core import LossWeights, MeshfreeFlowNet, MeshfreeFlowNetConfig, compute_losses
from repro.training import DistributedTrainer, Trainer, TrainerConfig


def make_model(dtype="float64", seed=3):
    with precision(dtype):
        return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=seed, unet_norm="group"))


def dist_config(**overrides):
    base = dict(epochs=2, batch_size=1, world_size=4, gamma=0.0,
                steps_per_epoch=2, learning_rate=1e-2)
    base.update(overrides)
    return TrainerConfig(**base)


def assert_same_params(a, b):
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert pa.data.dtype == pb.data.dtype
        assert np.array_equal(pa.data, pb.data)


def assert_same_history(ha, hb):
    """Histories must agree bitwise on everything except wall-clock telemetry."""
    assert len(ha) == len(hb)
    for ra, rb in zip(ha.records, hb.records):
        assert set(ra) == set(rb)
        for key in ra:
            if key == "wall_time":
                continue
            assert ra[key] == rb[key], f"history field {key}: {ra[key]} != {rb[key]}"


class TestConfigValidation:
    def test_momentum_range(self):
        with pytest.raises(ValueError):
            TrainerConfig(momentum=1.5)

    def test_scheduler_name(self):
        with pytest.raises(ValueError):
            TrainerConfig(scheduler="plateau")

    def test_nodes_must_divide_world(self):
        with pytest.raises(ValueError):
            TrainerConfig(world_size=4, nodes=3)
        with pytest.raises(ValueError):
            TrainerConfig(nodes=0)

    def test_allreduce_algorithm(self):
        with pytest.raises(ValueError):
            TrainerConfig(allreduce_algorithm="tree")

    def test_accumulate_steps(self):
        with pytest.raises(ValueError):
            TrainerConfig(accumulate_steps=0)


class TestGradientEquivalence:
    """All-reduce-averaged gradients == the seed's serial micro-batch average."""

    @pytest.mark.parametrize("nodes", [None, 2, 1])
    def test_allreduce_matches_serial_average(self, tiny_dataset, nodes):
        model = make_model()
        cfg = dist_config(nodes=nodes)
        trainer = DistributedTrainer(model, tiny_dataset, config=cfg)
        trainer.synchronize_gradients(0, 0)
        dist_grads = [p.grad.copy() for p in model.parameters()]

        # Serial reference (the seed semantics): per micro-batch, backward the
        # 1/world_size-scaled loss and accumulate — on the same batches.
        ref = make_model()
        ref.load_state_dict(model.state_dict())
        ref.zero_grad()
        weights = LossWeights(gamma=0.0)
        for _node, _acc, _rank, indices in trainer.last_step_indices:
            batch = tiny_dataset.sample_batch(indices, epoch=0)
            total, _ = compute_losses(
                ref, Tensor(batch.lowres), Tensor(batch.coords, requires_grad=True),
                Tensor(batch.targets), None, weights, coord_scales=batch.coord_scales)
            (total * (1.0 / cfg.world_size)).backward()

        for got, want in zip(dist_grads, ref.parameters()):
            assert np.max(np.abs(got - want.grad)) <= 1e-12

    def test_gradient_accumulation_matches_larger_batch(self, tiny_dataset):
        """accumulate_steps=2 must average gradients over both micro-rounds."""
        model = make_model()
        cfg = dist_config(world_size=2, accumulate_steps=2)
        trainer = DistributedTrainer(model, tiny_dataset, config=cfg)
        trainer.synchronize_gradients(0, 0)
        dist_grads = [p.grad.copy() for p in model.parameters()]
        assert len(trainer.last_step_indices) == 4  # 2 ranks x 2 accumulation rounds

        ref = make_model()
        ref.load_state_dict(model.state_dict())
        ref.zero_grad()
        weights = LossWeights(gamma=0.0)
        n_micro = len(trainer.last_step_indices)
        for _node, _acc, _rank, indices in trainer.last_step_indices:
            batch = tiny_dataset.sample_batch(indices, epoch=0)
            total, _ = compute_losses(
                ref, Tensor(batch.lowres), Tensor(batch.coords), Tensor(batch.targets),
                None, weights, coord_scales=batch.coord_scales)
            (total * (1.0 / n_micro)).backward()
        for got, want in zip(dist_grads, ref.parameters()):
            assert np.max(np.abs(got - want.grad)) <= 1e-12

    def test_training_decreases_loss(self, tiny_dataset):
        model = make_model()
        trainer = DistributedTrainer(model, tiny_dataset,
                                     config=dist_config(epochs=4, steps_per_epoch=4))
        history = trainer.train()
        assert history[-1]["loss"] < history[0]["loss"]


class TestSharding:
    def test_ranks_draw_only_from_their_shards(self, tiny_dataset):
        cfg = dist_config(world_size=4, steps_per_epoch=2)
        trainer = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        trainer._begin_epoch(0)
        shards = {rank: set(s.indices()) for rank, s in enumerate(trainer._samplers)}
        drawn: dict[int, list[int]] = {rank: [] for rank in shards}
        for step in range(2):
            trainer.synchronize_gradients(step, 0)
            for _node, _acc, rank, indices in trainer.last_step_indices:
                drawn[rank].extend(indices)
        for rank, indices in drawn.items():
            assert set(indices) <= shards[rank]

    def test_epoch_covers_every_sample_exactly_once(self, tiny_dataset):
        """steps * batch == shard size: the union of draws is the whole epoch."""
        # 8 samples, 4 ranks -> shard of 2 each; 2 steps of batch 1 walk it fully.
        cfg = dist_config(world_size=4, batch_size=1, steps_per_epoch=2)
        trainer = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        trainer._begin_epoch(0)
        seen: list[int] = []
        for step in range(2):
            trainer.synchronize_gradients(step, 0)
            seen.extend(i for *_, idx in trainer.last_step_indices for i in idx)
        assert sorted(seen) == list(range(len(tiny_dataset)))

    def test_comm_telemetry_recorded(self, tiny_dataset):
        trainer = DistributedTrainer(make_model(), tiny_dataset,
                                     config=dist_config(epochs=1))
        history = trainer.train()
        assert history[0]["comm_bytes"] > 0
        assert history[0]["collectives"] >= trainer.buckets.num_buckets
        assert history[0]["nodes"] == 4

    @pytest.mark.parametrize("algorithm", ["ring", "naive"])
    def test_single_node_has_no_traffic(self, tiny_dataset, algorithm):
        trainer = DistributedTrainer(
            make_model(), tiny_dataset,
            config=dist_config(epochs=1, nodes=1, allreduce_algorithm=algorithm))
        history = trainer.train()
        assert history[0]["comm_bytes"] == 0


def run_interrupted_and_straight(tmp_path, dataset, dtype, **config_overrides):
    """Train 4 epochs straight vs 2 + checkpoint + fresh trainer + 2 more."""
    cfg = dist_config(epochs=4, **config_overrides)

    straight = DistributedTrainer(make_model(dtype), dataset, config=cfg)
    straight.train()

    first = DistributedTrainer(make_model(dtype), dataset, config=cfg)
    first.train(2)
    path = tmp_path / "interrupt.npz"
    first.save(path)

    resumed = DistributedTrainer(make_model(dtype, seed=99), dataset, config=cfg)
    resumed.resume(path)
    resumed.train(2)
    return straight, resumed


class TestBitIdenticalResume:
    @pytest.mark.parametrize("dtype,master", [
        ("float64", False),
        ("float32", False),
        ("float32", True),
    ])
    def test_resume_bit_identical(self, tmp_path, tiny_dataset, dtype, master):
        straight, resumed = run_interrupted_and_straight(
            tmp_path, tiny_dataset, dtype, master_weights=master,
            scheduler="exponential", scheduler_kwargs={"gamma": 0.5},
        )
        assert straight.model.dtype == np.dtype(dtype)
        assert_same_params(straight.model, resumed.model)
        assert_same_history(straight.history, resumed.history)
        assert straight.optimizer.lr == resumed.optimizer.lr
        for i, state in straight.optimizer.state.items():
            for key, value in state.items():
                other = resumed.optimizer.state[i][key]
                assert np.asarray(other).dtype == np.asarray(value).dtype
                assert np.array_equal(value, other), f"optimizer state {i}/{key} differs"

    def test_resume_restores_dtype_policy(self, tmp_path, tiny_dataset):
        """A float64 trainer resuming a float32 checkpoint becomes float32."""
        cfg = dist_config(epochs=2)
        source = DistributedTrainer(make_model("float32"), tiny_dataset, config=cfg)
        source.train(1)
        path = tmp_path / "f32.npz"
        source.save(path)

        target = DistributedTrainer(make_model("float64"), tiny_dataset, config=cfg)
        meta = target.resume(path)
        assert meta["dtype"] == "float32"
        assert target.model.dtype == np.dtype(np.float32)
        assert_same_params(source.model, target.model)

    def test_serial_trainer_resume_bit_identical(self, tmp_path, tiny_dataset):
        """Trainer.save/resume round-trips the serial loop too."""
        cfg = TrainerConfig(epochs=4, batch_size=2, gamma=0.0, steps_per_epoch=2,
                            scheduler="step", scheduler_kwargs={"step_size": 1, "gamma": 0.5})
        straight = Trainer(make_model(), tiny_dataset, config=cfg)
        straight.train()

        first = Trainer(make_model(), tiny_dataset, config=cfg)
        first.train(2)
        path = tmp_path / "serial.npz"
        first.save(path)
        resumed = Trainer(make_model(seed=77), tiny_dataset, config=cfg)
        resumed.resume(path)
        resumed.train(2)

        assert_same_params(straight.model, resumed.model)
        assert_same_history(straight.history, resumed.history)

    def test_resume_rejects_mismatched_worker_count(self, tmp_path, tiny_dataset):
        source = DistributedTrainer(make_model(), tiny_dataset, config=dist_config())
        source.train(1)
        path = tmp_path / "w4.npz"
        source.save(path)
        other = DistributedTrainer(make_model(), tiny_dataset,
                                   config=dist_config(world_size=2))
        before = [p.data.copy() for p in other.model.parameters()]
        with pytest.raises(ValueError):
            other.resume(path)
        # The rejection happens before any state is mutated: the trainer is intact.
        assert other._epoch == 0
        for p, prior in zip(other.model.parameters(), before):
            assert np.array_equal(p.data, prior)

    def test_mid_epoch_save_resumes_bit_identically(self, tmp_path, tiny_dataset):
        """Checkpoints taken between train_step calls capture the shard cursors."""
        cfg = dist_config(epochs=2)
        source = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        source.train(1)
        source.train_step(0, source._epoch)  # advance mid-epoch
        path = tmp_path / "mid.npz"
        source.save(path)

        resumed = DistributedTrainer(make_model(seed=31), tiny_dataset, config=cfg)
        resumed.resume(path)
        # Continue both runs with identical direct steps: cursors must line up.
        source.train_step(1, source._epoch)
        resumed.train_step(1, resumed._epoch)
        assert source.last_step_indices == resumed.last_step_indices
        assert_same_params(source.model, resumed.model)

    def test_cross_dtype_resume_continues_bit_identically(self, tmp_path, tiny_dataset):
        """Resuming a float32 run in a float64-built trainer must rebuild the
        communication path in float32 and continue bit-identically."""
        cfg = dist_config(epochs=4)
        straight = DistributedTrainer(make_model("float32"), tiny_dataset, config=cfg)
        straight.train()

        first = DistributedTrainer(make_model("float32"), tiny_dataset, config=cfg)
        first.train(2)
        path = tmp_path / "cross.npz"
        first.save(path)

        resumed = DistributedTrainer(make_model("float64", seed=5), tiny_dataset, config=cfg)
        resumed.resume(path)
        assert resumed.buckets.dtype == np.dtype(np.float32)
        resumed.train(2)
        for p in resumed.model.parameters():
            assert p.grad.dtype == np.dtype(np.float32)
        assert_same_params(straight.model, resumed.model)
        assert_same_history(straight.history, resumed.history)


class TestResumeValidation:
    def test_resume_rejects_master_weights_mismatch(self, tmp_path, tiny_dataset):
        source = DistributedTrainer(make_model("float32"), tiny_dataset,
                                    config=dist_config(master_weights=True))
        source.train(1)
        path = tmp_path / "master.npz"
        source.save(path)
        plain = DistributedTrainer(make_model("float32"), tiny_dataset,
                                   config=dist_config(master_weights=False))
        with pytest.raises(ValueError, match="master_weights"):
            plain.resume(path)

    def test_resume_rejects_optimizer_mismatch(self, tmp_path, tiny_dataset):
        source = DistributedTrainer(make_model(), tiny_dataset,
                                    config=dist_config(optimizer="adam"))
        source.train(1)
        path = tmp_path / "adam.npz"
        source.save(path)
        sgd = DistributedTrainer(make_model(), tiny_dataset,
                                 config=dist_config(optimizer="sgd"))
        with pytest.raises(ValueError, match="optimizer"):
            sgd.resume(path)

    def test_resume_rejects_scheduler_kwargs_mismatch(self, tmp_path, tiny_dataset):
        source = DistributedTrainer(
            make_model(), tiny_dataset,
            config=dist_config(scheduler="exponential", scheduler_kwargs={"gamma": 0.5}))
        source.train(1)
        path = tmp_path / "kw.npz"
        source.save(path)
        other = DistributedTrainer(
            make_model(), tiny_dataset,
            config=dist_config(scheduler="exponential", scheduler_kwargs={"gamma": 0.9}))
        with pytest.raises(ValueError, match="scheduler_kwargs"):
            other.resume(path)

    def test_resume_rejects_scheduler_mismatch(self, tmp_path, tiny_dataset):
        source = DistributedTrainer(
            make_model(), tiny_dataset,
            config=dist_config(scheduler="exponential", scheduler_kwargs={"gamma": 0.5}))
        source.train(1)
        path = tmp_path / "sched.npz"
        source.save(path)
        plain = DistributedTrainer(make_model(), tiny_dataset, config=dist_config())
        with pytest.raises(ValueError, match="scheduler"):
            plain.resume(path)


class TestStepSemantics:
    def test_direct_steps_reshard_on_epoch_change(self, tiny_dataset):
        """A direct step with a new epoch must draw from that epoch's shards."""
        trainer = DistributedTrainer(make_model(), tiny_dataset, config=dist_config())
        trainer.train_step(0, 0)
        trainer.train_step(0, 1)
        shards = {rank: set(s.indices()) for rank, s in enumerate(trainer._samplers)}
        assert trainer._samplers[0].epoch == 1
        for _node, _acc, rank, indices in trainer.last_step_indices:
            assert set(indices) <= shards[rank]

    def test_default_steps_account_for_accumulation(self, tiny_dataset):
        """One default epoch is one pass over the data at the effective batch."""
        trainer = DistributedTrainer(
            make_model(), tiny_dataset,
            config=dist_config(world_size=2, batch_size=1, accumulate_steps=2,
                               steps_per_epoch=None))
        assert trainer._steps_per_epoch() == len(tiny_dataset) // (1 * 2 * 2)

    def test_unused_parameter_keeps_none_grad(self, tiny_dataset):
        """Parameters no node touches must not receive all-reduced zero grads
        (weight decay / momentum would silently act on them)."""
        from repro.nn.module import Parameter

        model = make_model()
        model.unused_head = Parameter(np.zeros(3))  # registered, never in forward
        trainer = DistributedTrainer(model, tiny_dataset,
                                     config=dist_config(weight_decay=1e-2))
        trainer.train_step(0, 0)
        assert model.unused_head.grad is None
        assert np.array_equal(model.unused_head.data, np.zeros(3))  # no decay applied
        live_grads = [p for p in model.parameters() if p.grad is not None]
        assert len(live_grads) == len(model.parameters()) - 1


class TestMixedPrecision:
    def test_master_weights_dtypes(self, tiny_dataset):
        trainer = DistributedTrainer(make_model("float32"), tiny_dataset,
                                     config=dist_config(epochs=1, master_weights=True))
        trainer.train()
        assert trainer.model.dtype == np.dtype(np.float32)
        assert trainer.buckets.dtype == np.dtype(np.float32)
        for state in trainer.optimizer.state.values():
            assert state["master"].dtype == np.dtype(np.float64)
            assert state["m"].dtype == np.dtype(np.float64)

    def test_float32_allreduce_stays_float32(self, tiny_dataset):
        trainer = DistributedTrainer(make_model("float32"), tiny_dataset,
                                     config=dist_config())
        trainer.synchronize_gradients(0, 0)
        for p in trainer.model.parameters():
            assert p.grad.dtype == np.dtype(np.float32)
