"""Observability layer: metrics registry, span tracing, profiling, exporters."""

import json
import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.autodiff import Tensor
from repro.autodiff import tensor as tensor_mod
from repro.obs.metrics import MetricsRegistry
from repro.serving import QueryResult, ServerTelemetry
from repro.serving.requests import STATUS_OK


@pytest.fixture(autouse=True)
def obs_clean():
    """Every test starts and ends with instrumentation off and buffers empty."""
    obs.disable()
    obs.clear_events()
    yield
    obs.disable()
    obs.clear_events()


# --------------------------------------------------------------------------- #
# Metrics registry                                                            #
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("requests", route="/query")
        b = reg.counter("requests", route="/query")
        c = reg.counter("requests", route="/stats")
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3.0 and c.value == 0.0
        snap = reg.snapshot()
        assert snap["counters"]["requests{route=/query}"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0

    def test_histogram_routes_through_latency_window(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", maxlen=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 5          # lifetime count
        assert summary["max"] == 5.0          # rolling window dropped 1.0
        assert summary["p50"] == pytest.approx(3.5)

    def test_empty_histogram_summary_is_nan(self):
        summary = MetricsRegistry().histogram("lat").summary()
        assert summary["count"] == 0 and math.isnan(summary["p99"])

    def test_collector_is_weakref_dropped(self):
        class Owner:
            """Dummy collector owner."""

        reg = MetricsRegistry()
        owner = Owner()
        reg.add_collector(lambda: {"custom.gauge": 7.0}, owner=owner)
        assert reg.snapshot()["gauges"]["custom.gauge"] == 7.0
        del owner
        assert "custom.gauge" not in reg.snapshot()["gauges"]

    def test_concurrent_hammer_with_snapshots(self):
        """N recording threads + concurrent snapshots: monotone, no torn reads."""
        reg = MetricsRegistry()
        n_threads, n_iter = 8, 400
        stop = threading.Event()
        seen = []

        def record(tid):
            counter = reg.counter("hits")
            hist = reg.histogram("lat", worker=tid)
            for i in range(n_iter):
                counter.inc()
                reg.gauge("depth").set(i)
                hist.observe(0.001 * i)

        def snapshotter():
            while not stop.is_set():
                snap = reg.snapshot()
                seen.append(snap["counters"].get("hits", 0.0))

        threads = [threading.Thread(target=record, args=(t,)) for t in range(n_threads)]
        snapper = threading.Thread(target=snapshotter)
        snapper.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        snapper.join()
        assert reg.counter("hits").value == n_threads * n_iter
        # Counter observed mid-flight must be monotone non-decreasing and
        # never exceed the true total (no torn/partial reads).
        assert all(b >= a for a, b in zip(seen, seen[1:]))
        assert all(0.0 <= v <= n_threads * n_iter for v in seen)
        for t in range(n_threads):
            assert reg.histogram("lat", worker=t).count == n_iter


class TestServerTelemetryConcurrency:
    def test_hammer_telemetry_while_snapshotting(self):
        telemetry = ServerTelemetry(window=256)
        n_threads, n_iter = 6, 300
        stop = threading.Event()
        seen = []

        def record():
            for _ in range(n_iter):
                telemetry.record_admission(True)
                telemetry.record_batch(n_requests=2, n_points=10)
                telemetry.record_result(QueryResult(
                    request_id="r", status=STATUS_OK,
                    queue_seconds=0.001, service_seconds=0.002))

        def snapshotter():
            while not stop.is_set():
                snap = telemetry.snapshot(queue_depth=1)
                seen.append((snap["accepted"], snap["completed"]))

        threads = [threading.Thread(target=record) for _ in range(n_threads)]
        snapper = threading.Thread(target=snapshotter)
        snapper.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        snapper.join()
        total = n_threads * n_iter
        assert telemetry.accepted == total
        assert telemetry.completed == total
        assert telemetry.batches == total
        assert telemetry.points_decoded == 10 * total
        assert telemetry.latency.count == total
        for accepted, completed in seen:
            assert 0 <= accepted <= total and 0 <= completed <= total
        assert all(a2 >= a1 for (a1, _), (a2, _) in zip(seen, seen[1:]))

    def test_snapshot_keys_and_registry_backing(self):
        telemetry = ServerTelemetry(window=8)
        snap = telemetry.snapshot()
        assert snap["accepted"] == 0
        assert math.isnan(snap["latency_p99"])  # no traffic yet: NaN, not 0
        telemetry.record_result(QueryResult(
            request_id="r", status=STATUS_OK, queue_seconds=0.001,
            service_seconds=0.001))
        assert telemetry.snapshot()["latency_p99"] > 0.0
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["serving.completed"] == 1.0


# --------------------------------------------------------------------------- #
# Span tracing                                                                #
# --------------------------------------------------------------------------- #
class TestTracing:
    def test_disabled_tracing_is_noop(self):
        with obs.span("a.b", k=1) as sp:
            assert sp.ctx is None
        assert obs.events() == []

    def test_nesting_and_parent_links(self):
        obs.enable(trace=True)
        with obs.span("outer", parent=None) as outer:
            with obs.span("inner") as inner:
                assert obs.current_context() is inner.ctx
        events = {e["name"]: e for e in obs.take_events()}
        assert events["inner"]["args"]["trace_id"] == events["outer"]["args"]["trace_id"]
        assert events["inner"]["args"]["parent_id"] == events["outer"]["args"]["span_id"]
        assert "parent_id" not in events["outer"]["args"]
        assert events["inner"]["ts"] >= events["outer"]["ts"]
        assert events["inner"]["dur"] <= events["outer"]["dur"]

    def test_thread_isolation(self):
        obs.enable(trace=True)
        contexts = {}

        def worker():
            contexts["worker"] = obs.current_context()

        with obs.span("root", parent=None):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            contexts["main"] = obs.current_context()
        assert contexts["main"] is not None
        assert contexts["worker"] is None  # fresh thread: no inherited parent

    def test_explicit_context_handoff_across_threads(self):
        obs.enable(trace=True)

        def worker(parent_ctx):
            with obs.span("child", parent=parent_ctx):
                pass

        with obs.span("root", parent=None) as root:
            ctx = obs.current_context()
            t = threading.Thread(target=worker, args=(ctx,))
            t.start()
            t.join()
        events = {e["name"]: e for e in obs.take_events()}
        assert events["child"]["args"]["trace_id"] == root.ctx.trace_id
        assert events["child"]["args"]["parent_id"] == root.ctx.span_id

    def test_asyncio_task_isolation(self):
        import asyncio

        obs.enable(trace=True)

        async def task(name):
            with obs.span(name):
                await asyncio.sleep(0)
                return obs.current_context()

        async def main():
            with obs.span("root", parent=None):
                return await asyncio.gather(task("a"), task("b"))

        ctx_a, ctx_b = asyncio.run(main())
        assert ctx_a.trace_id == ctx_b.trace_id  # both under the root trace
        assert ctx_a.span_id != ctx_b.span_id
        events = {e["name"]: e for e in obs.take_events()}
        root_span = events["root"]["args"]["span_id"]
        assert events["a"]["args"]["parent_id"] == root_span
        assert events["b"]["args"]["parent_id"] == root_span

    def test_span_exceptions_still_record_and_restore(self):
        obs.enable(trace=True)
        with pytest.raises(RuntimeError):
            with obs.span("boom", parent=None):
                raise RuntimeError("x")
        assert obs.current_context() is None
        assert [e["name"] for e in obs.events()] == ["boom"]


# --------------------------------------------------------------------------- #
# Runtime switchboard + op hook                                               #
# --------------------------------------------------------------------------- #
class TestRuntime:
    def test_everything_off_by_default(self):
        assert not obs.is_enabled()
        assert tensor_mod._OP_HOOK is None

    def test_enable_installs_and_disable_removes_op_hook(self):
        obs.enable(profile_ops=True)
        assert obs.is_enabled()
        assert tensor_mod._OP_HOOK is not None
        obs.disable()
        assert tensor_mod._OP_HOOK is None and not obs.is_enabled()

    def test_op_profiling_records_histograms(self):
        obs.enable(trace=False, profile_ops=True)
        x = Tensor(np.ones((4, 4)))
        (x * 2.0 + 1.0).sum()
        snap = obs.REGISTRY.snapshot()
        names = set(snap["histograms"])
        assert "tape.op_seconds{op=Mul}" in names
        assert "tape.op_seconds{op=Add}" in names
        assert "tape.op_seconds{op=Sum}" in names

    def test_memory_profiling_records_alloc_bytes(self):
        obs.enable(trace=False, profile_memory=True)
        x = Tensor(np.ones((64, 64)))
        (x * 3.0).sum()
        snap = obs.REGISTRY.snapshot()
        hist = snap["histograms"].get("tape.op_alloc_bytes{op=Mul}")
        assert hist is not None and hist["count"] >= 1

    def test_observed_context_manager(self):
        with obs.observed(profile_ops=True):
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_instrumented_eager_outputs_bit_identical(self):
        x = Tensor(np.linspace(-2, 2, 64).reshape(8, 8))
        expected = (x.tanh() * x + 1.5).exp().sum()
        obs.enable(trace=True, profile_ops=True, profile_memory=True)
        with obs.span("test.root", parent=None):
            observed = (x.tanh() * x + 1.5).exp().sum()
        obs.disable()
        assert np.array_equal(observed.data, expected.data)


# --------------------------------------------------------------------------- #
# Exporters                                                                   #
# --------------------------------------------------------------------------- #
class TestExporters:
    def test_chrome_trace_schema(self, tmp_path):
        obs.enable(trace=True)
        with obs.span("phase.work", parent=None, detail="x"):
            pass
        path = obs.write_chrome_trace(str(tmp_path / "trace.json"))
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X" and event["name"] == "phase.work"
        assert event["cat"] == "phase"
        assert event["dur"] >= 0 and isinstance(event["tid"], int)
        assert event["args"]["detail"] == "x"

    def test_metrics_jsonl_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        path = str(tmp_path / "metrics.jsonl")
        obs.append_metrics_jsonl(path, reg)
        obs.append_metrics_jsonl(path, reg)
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == 2
        assert lines[0]["metrics"]["counters"]["a"] == 3.0
        assert lines[1]["ts"] >= lines[0]["ts"]

    def test_prometheus_text(self):
        reg = MetricsRegistry()
        reg.counter("serving.completed").inc(5)
        reg.gauge("queue.depth", worker="0").set(2)
        reg.histogram("serving.latency_seconds").observe(0.25)
        text = obs.prometheus_text(reg)
        assert "# TYPE serving_completed counter" in text
        assert "serving_completed 5.0" in text
        assert 'queue_depth{worker="0"} 2.0' in text
        assert 'serving_latency_seconds{quantile="0.5"} 0.25' in text
        assert "serving_latency_seconds_count 1" in text

    def test_prometheus_text_renders_nan_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("empty.hist")
        text = obs.prometheus_text(reg)
        assert 'empty_hist{quantile="0.5"} NaN' in text
        assert "empty_hist_count 0" in text
