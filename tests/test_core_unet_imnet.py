"""Context Generation Network (U-Net) and Continuous Decoding Network (ImNet)."""

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.core import ImNet, MeshfreeFlowNetConfig, ResBlock3d, UNet3d


class TestResBlock:
    def test_shape_preserved(self, rng):
        block = ResBlock3d(4, 4, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 4, 2, 4, 4))))
        assert out.shape == (2, 4, 2, 4, 4)

    def test_channel_change_uses_projection(self, rng):
        block = ResBlock3d(3, 8, rng=rng)
        out = block(Tensor(rng.standard_normal((1, 3, 2, 4, 4))))
        assert out.shape == (1, 8, 2, 4, 4)

    def test_gradients_reach_all_parameters(self, rng):
        block = ResBlock3d(2, 4, rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 2, 4, 4)))
        ops.sum(block(x)).backward()
        assert all(p.grad is not None for p in block.parameters())

    def test_group_norm_variant(self, rng):
        block = ResBlock3d(2, 4, norm="group", rng=rng)
        out = block(Tensor(rng.standard_normal((1, 2, 2, 4, 4))))
        assert np.isfinite(out.data).all()


class TestUNet3d:
    def test_latent_grid_shape(self, rng):
        net = UNet3d(in_channels=4, latent_channels=6, base_channels=4,
                     pool_factors=((1, 2, 2), (2, 2, 2)), rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 2, 8, 8)))
        out = net(x)
        assert out.shape == (2, 6, 2, 8, 8)

    def test_fully_convolutional_larger_input(self, rng):
        """The same network processes a larger domain (the key scalability claim)."""
        net = UNet3d(in_channels=4, latent_channels=3, base_channels=4,
                     pool_factors=((1, 2, 2),), rng=rng)
        small = net(Tensor(rng.standard_normal((1, 4, 2, 4, 4))))
        large = net(Tensor(rng.standard_normal((1, 4, 4, 16, 16))))
        assert small.shape[2:] == (2, 4, 4)
        assert large.shape[2:] == (4, 16, 16)

    def test_indivisible_input_raises(self, rng):
        net = UNet3d(in_channels=2, latent_channels=2, base_channels=2,
                     pool_factors=((2, 2, 2),), rng=rng)
        with pytest.raises(ValueError, match="divisible"):
            net(Tensor(rng.standard_normal((1, 2, 3, 4, 4))))

    def test_wrong_channel_count_raises(self, rng):
        net = UNet3d(in_channels=4, latent_channels=2, base_channels=2,
                     pool_factors=((1, 2, 2),), rng=rng)
        with pytest.raises(ValueError, match="channels"):
            net(Tensor(rng.standard_normal((1, 3, 2, 4, 4))))

    def test_wrong_rank_raises(self, rng):
        net = UNet3d(in_channels=4, latent_channels=2, base_channels=2, pool_factors=((1, 2, 2),), rng=rng)
        with pytest.raises(ValueError):
            net(Tensor(rng.standard_normal((4, 2, 4, 4))))

    def test_required_divisor(self):
        net = UNet3d(4, 2, 2, pool_factors=((1, 2, 2), (2, 2, 2), (2, 2, 2)))
        assert net.required_divisor() == (4, 8, 8)

    def test_from_config(self):
        cfg = MeshfreeFlowNetConfig.tiny()
        net = UNet3d.from_config(cfg)
        assert net.latent_channels == cfg.latent_channels

    def test_gradients_flow(self, rng):
        net = UNet3d(in_channels=2, latent_channels=2, base_channels=2,
                     pool_factors=((1, 2, 2),), rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 2, 4, 4)))
        ops.sum(ops.square(net(x))).backward()
        grads = [p.grad is not None for p in net.parameters()]
        assert all(grads)


class TestImNet:
    def test_output_shape(self, rng):
        net = ImNet(coord_dim=3, latent_dim=8, out_channels=4, hidden=(16, 8), rng=rng)
        out = net(Tensor(rng.standard_normal((2, 5, 11))))
        assert out.shape == (2, 5, 4)

    def test_in_features(self):
        net = ImNet(coord_dim=3, latent_dim=5, out_channels=2, hidden=(4,))
        assert net.in_features == 8

    def test_wrong_trailing_dim_raises(self, rng):
        net = ImNet(coord_dim=3, latent_dim=8, out_channels=4, hidden=(8,), rng=rng)
        with pytest.raises(ValueError):
            net(Tensor(rng.standard_normal((2, 5, 7))))

    @pytest.mark.parametrize("activation", ["softplus", "tanh", "relu", "sin"])
    def test_activations(self, activation, rng):
        net = ImNet(coord_dim=3, latent_dim=4, out_channels=2, hidden=(8,), activation=activation, rng=rng)
        out = net(Tensor(rng.standard_normal((3, 7))))
        assert np.isfinite(out.data).all()

    def test_from_config(self):
        cfg = MeshfreeFlowNetConfig.tiny()
        net = ImNet.from_config(cfg)
        assert net.latent_dim == cfg.latent_channels
        assert net.out_channels == cfg.out_channels

    def test_smoothness_softplus_has_nonzero_second_derivative(self, rng):
        """Softplus decoders keep Laplacian information (unlike ReLU)."""
        from repro.autodiff import grad
        net = ImNet(coord_dim=1, latent_dim=0, out_channels=1, hidden=(8, 8),
                    activation="softplus", rng=rng)
        x = Tensor(rng.standard_normal((5, 1)), requires_grad=True)
        y = ops.sum(net(x))
        g1 = grad(y, x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        assert np.any(np.abs(g2.data) > 1e-8)


class TestConfig:
    def test_presets(self):
        assert MeshfreeFlowNetConfig.paper().latent_channels == 32
        assert MeshfreeFlowNetConfig.tiny().latent_channels < 32

    def test_min_input_shape(self):
        cfg = MeshfreeFlowNetConfig.paper()
        assert cfg.min_input_shape() == (4, 16, 16)

    def test_roundtrip_dict(self):
        cfg = MeshfreeFlowNetConfig.small()
        cfg2 = MeshfreeFlowNetConfig.from_dict(cfg.to_dict())
        assert cfg2 == cfg

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshfreeFlowNetConfig(field_names=("a", "b"))
        with pytest.raises(ValueError):
            MeshfreeFlowNetConfig(interpolation="bicubic")
