"""Content-addressed artifact layer: fingerprints, the store, cache semantics."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.metrics.report import MetricReport
from repro.pipeline import (
    ArtifactCorrupted,
    ArtifactMissing,
    ArtifactStore,
    Pipeline,
    Stage,
    fingerprint,
    run_pipeline,
)
from repro.pipeline.artifacts import load_value, save_value
from repro.pipeline.fingerprint import FINGERPRINT_VERSION, canonical_bytes, code_token
from repro.pipeline.stage import topological_order
from repro.simulation import SimulationResult


# --------------------------------------------------------------------------
# fingerprints
# --------------------------------------------------------------------------

class TestFingerprint:
    def test_dict_key_order_is_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_value_changes_change_the_key(self):
        base = {"x": 1.0, "y": [1, 2, 3]}
        assert fingerprint(base) != fingerprint({**base, "x": 1.0000000001})
        assert fingerprint(base) != fingerprint({**base, "y": [1, 2, 4]})

    def test_type_distinctions(self):
        # 1 vs 1.0 vs True vs "1" must all hash differently.
        keys = {fingerprint(v) for v in (1, 1.0, True, "1")}
        assert len(keys) == 4

    def test_ndarray_content_and_dtype(self):
        a = np.arange(6, dtype=np.float64)
        assert fingerprint(a) == fingerprint(a.copy())
        assert fingerprint(a) != fingerprint(a.astype(np.float32))
        assert fingerprint(a) != fingerprint(a.reshape(2, 3))

    def test_version_tag_is_mixed_in(self):
        assert FINGERPRINT_VERSION.encode() in canonical_bytes({"k": 1})

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint({"fn": object()})

    def test_code_token_is_the_source_file_hash(self):
        def local_fn(ctx):
            return None

        token = code_token(local_fn)
        assert token == code_token(TestFingerprint.test_code_token_is_the_source_file_hash)
        assert len(token) == 64

    def test_fingerprint_stable_across_processes(self):
        """The same structure must hash identically in a fresh interpreter."""
        payload = {"scale": {"epochs": 4, "lr": 1e-2}, "gammas": [0.0, 0.0125],
                   "arr": np.arange(5, dtype=np.float64)}
        expected = fingerprint(payload)
        script = (
            "import numpy as np\n"
            "from repro.pipeline import fingerprint\n"
            "payload = {'scale': {'epochs': 4, 'lr': 1e-2}, 'gammas': [0.0, 0.0125],\n"
            "           'arr': np.arange(5, dtype=np.float64)}\n"
            "print(fingerprint(payload))\n"
        )
        out = subprocess.run([sys.executable, "-c", script], capture_output=True,
                             text=True, check=True,
                             env={"PYTHONPATH": str(Path(__file__).parent.parent / "src"),
                                  "PATH": "/usr/bin:/bin"})
        assert out.stdout.strip() == expected

    def test_standard_pipeline_fingerprints_stable_across_processes(self):
        from repro.pipeline import PipelineConfig, build_standard_pipeline

        fps = build_standard_pipeline(PipelineConfig()).fingerprints()
        script = (
            "import json\n"
            "from repro.pipeline import PipelineConfig, build_standard_pipeline\n"
            "print(json.dumps(build_standard_pipeline(PipelineConfig()).fingerprints()))\n"
        )
        out = subprocess.run([sys.executable, "-c", script], capture_output=True,
                             text=True, check=True,
                             env={"PYTHONPATH": str(Path(__file__).parent.parent / "src"),
                                  "PATH": "/usr/bin:/bin"})
        assert json.loads(out.stdout) == fps


# --------------------------------------------------------------------------
# value serialization + the store
# --------------------------------------------------------------------------

def _sample_sim() -> SimulationResult:
    rng = np.random.default_rng(7)
    return SimulationResult(fields=rng.normal(size=(3, 4, 5, 6)),
                            times=np.linspace(0.0, 1.0, 3),
                            lx=3.0, lz=1.0, rayleigh=1e6, prandtl=1.0)


class TestValueSerialization:
    def test_round_trip_mixed_tree(self, tmp_path):
        value = {
            "text": "hello", "n": 3, "x": 0.125, "flag": True, "none": None,
            "arr": np.arange(12, dtype=np.float32).reshape(3, 4),
            "nested": {"list": [1, "two", {"deep": np.ones(2)}]},
            "report": MetricReport(nmae={"Etot": 1.5}, r2={"Etot": 0.9}, label="row"),
            "sim": _sample_sim(),
        }
        save_value(value, tmp_path)
        loaded = load_value(tmp_path)
        assert loaded["text"] == "hello" and loaded["n"] == 3
        assert loaded["x"] == 0.125 and loaded["flag"] is True and loaded["none"] is None
        np.testing.assert_array_equal(loaded["arr"], value["arr"])
        assert loaded["arr"].dtype == np.float32
        np.testing.assert_array_equal(loaded["nested"]["list"][2]["deep"], np.ones(2))
        assert loaded["report"].label == "row"
        assert loaded["report"].nmae == {"Etot": 1.5}
        np.testing.assert_array_equal(loaded["sim"].fields, value["sim"].fields)

    def test_store_round_trip_and_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        record = store.save("f" * 64, {"x": np.arange(3)}, stage="demo",
                            meta={"seconds": 1.0})
        assert store.has("f" * 64)
        assert record.stage == "demo"
        np.testing.assert_array_equal(store.load("f" * 64)["x"], np.arange(3))
        manifest = store.manifest()
        assert len(manifest) == 1 and manifest[0]["stage"] == "demo"

    def test_missing_artifact_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert not store.has("0" * 64)
        with pytest.raises(ArtifactMissing):
            store.load("0" * 64)

    def test_corrupted_payload_detected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fp = "c" * 64
        store.save(fp, {"x": np.arange(10, dtype=np.float64)})
        # Flip bytes in the array payload behind the store's back.
        payload = store.root / "objects" / fp / "arrays.npz"
        data = bytearray(payload.read_bytes())
        data[-8] ^= 0xFF
        payload.write_bytes(bytes(data))
        with pytest.raises(ArtifactCorrupted):
            store.load(fp)

    def test_scratch_dir_cleared_on_commit(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        fp = "d" * 64
        scratch = store.scratch_dir(fp)
        (scratch / "mid-run.txt").write_text("checkpoint")
        store.save(fp, {"done": True})
        assert not scratch.exists()


# --------------------------------------------------------------------------
# DAG + executor cache semantics
# --------------------------------------------------------------------------

def _counting_pipeline(calls, base=1.0):
    """a -> b -> c chain plus an independent stage d; every run is counted."""

    def body(ctx):
        calls.append(ctx.params["tag"])
        upstream = sum(ctx.inputs[dep]["v"] for dep in sorted(ctx.inputs))
        return {"v": ctx.params["x"] + upstream}

    return Pipeline([
        Stage("a", body, params={"tag": "a", "x": base}),
        Stage("b", body, deps=("a",), params={"tag": "b", "x": 10.0}),
        Stage("c", body, deps=("b",), params={"tag": "c", "x": 100.0}),
        Stage("d", body, params={"tag": "d", "x": 7.0}),
    ])


class TestCacheSemantics:
    def test_unchanged_rerun_is_all_cache_hits(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        calls = []
        report = run_pipeline(_counting_pipeline(calls), store=store)
        assert report.counts() == {"computed": 4}
        assert report.values["c"]["v"] == 111.0

        report = run_pipeline(_counting_pipeline(calls), store=store)
        assert report.counts() == {"cached": 4}, "unchanged rerun must not recompute"
        assert sorted(calls) == ["a", "b", "c", "d"]
        assert report.values["c"]["v"] == 111.0

    def test_config_edit_recomputes_exactly_the_downstream_cone(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_pipeline(_counting_pipeline([]), store=store)

        calls = []
        report = run_pipeline(_counting_pipeline(calls, base=2.0), store=store)
        statuses = {n: r.status for n, r in report.results.items()}
        assert statuses == {"a": "computed", "b": "computed", "c": "computed",
                            "d": "cached"}
        assert sorted(calls) == ["a", "b", "c"]
        assert report.values["c"]["v"] == 112.0

    def test_corrupted_artifact_triggers_recompute(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        pipe = _counting_pipeline([])
        report = run_pipeline(pipe, store=store)
        fp = report.results["b"].fingerprint
        value_file = store.root / "objects" / fp / "value.json"
        value_file.write_text(value_file.read_text()[:-2])  # truncate JSON

        calls = []
        report = run_pipeline(_counting_pipeline(calls), store=store)
        assert report.results["b"].status == "computed"
        assert report.results["a"].status == "cached"
        assert report.results["c"].status == "cached"
        assert calls == ["b"]
        assert report.values["b"]["v"] == 11.0

    def test_force_and_start_from(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_pipeline(_counting_pipeline([]), store=store)

        report = run_pipeline(_counting_pipeline([]), store=store, force=["b"])
        statuses = {n: r.status for n, r in report.results.items()}
        assert statuses == {"a": "cached", "b": "computed", "c": "cached", "d": "cached"}

        report = run_pipeline(_counting_pipeline([]), store=store, start_from="b")
        statuses = {n: r.status for n, r in report.results.items()}
        assert statuses == {"a": "cached", "b": "computed", "c": "computed", "d": "cached"}

    def test_until_selects_the_upstream_closure(self, tmp_path):
        report = run_pipeline(_counting_pipeline([]), until="b")
        statuses = {n: r.status for n, r in report.results.items()}
        assert statuses == {"a": "computed", "b": "computed",
                            "c": "skipped", "d": "skipped"}

    def test_failed_stage_poisons_its_cone(self):
        def boom(ctx):
            raise RuntimeError("stage exploded")

        def ok(ctx):
            return {"v": 1}

        pipe = Pipeline([
            Stage("a", ok), Stage("b", boom, deps=("a",)),
            Stage("c", ok, deps=("b",)), Stage("d", ok),
        ])
        report = run_pipeline(pipe)
        assert not report.ok
        assert report.results["b"].status == "failed"
        assert "stage exploded" in report.results["b"].error
        assert report.results["c"].status == "skipped"
        assert report.results["c"].error == "upstream stage failed"
        assert report.results["d"].status == "computed"

    def test_parallel_execution_matches_serial(self, tmp_path):
        serial = run_pipeline(_counting_pipeline([]))
        parallel = run_pipeline(_counting_pipeline([]), jobs=4)
        assert {n: v["v"] for n, v in serial.values.items()} == \
               {n: v["v"] for n, v in parallel.values.items()}

    def test_keep_values_false_retains_only_terminal_stages(self, tmp_path):
        report = run_pipeline(_counting_pipeline([]), keep_values=False)
        assert set(report.values) == {"c", "d"}


class TestGraphValidation:
    def test_duplicate_stage_name(self):
        pipe = Pipeline([Stage("a", lambda ctx: None)])
        with pytest.raises(ValueError, match="duplicate stage name"):
            pipe.add(Stage("a", lambda ctx: None))

    def test_unknown_dependency(self):
        with pytest.raises(ValueError, match="unknown stage"):
            topological_order([Stage("a", lambda ctx: None, deps=("ghost",))])

    def test_cycle_detection(self):
        stages = [Stage("a", lambda ctx: None, deps=("b",)),
                  Stage("b", lambda ctx: None, deps=("a",))]
        with pytest.raises(ValueError, match="cycle"):
            topological_order(stages)

    def test_unknown_stage_lookup_lists_names(self):
        pipe = Pipeline([Stage("a", lambda ctx: None)])
        with pytest.raises(KeyError, match="available"):
            pipe["zzz"]

    def test_upstream_and_downstream_cones(self):
        pipe = _counting_pipeline([])
        assert pipe.upstream_closure(["c"]) == {"a", "b", "c"}
        assert pipe.downstream_cone(["a"]) == {"a", "b", "c"}
        assert pipe.downstream_cone(["d"]) == {"d"}
