"""Rayleigh–Bénard PDE system: coefficients and residuals on analytic fields."""

import math

import numpy as np
import pytest

from repro.pde import RayleighBenard2D, advection_diffusion_system, divergence_free_system
from repro.simulation import manufactured_solution


class TestCoefficients:
    def test_p_star_r_star(self):
        sys = RayleighBenard2D(rayleigh=1e6, prandtl=1.0)
        assert sys.p_star == pytest.approx(1e-3)
        assert sys.r_star == pytest.approx(1e-3)

    def test_prandtl_dependence(self):
        sys = RayleighBenard2D(rayleigh=1e4, prandtl=4.0)
        assert sys.p_star == pytest.approx(1.0 / math.sqrt(4e4))
        assert sys.r_star == pytest.approx(math.sqrt(4.0 / 1e4))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RayleighBenard2D(rayleigh=-1.0)

    def test_constraint_names(self):
        sys = RayleighBenard2D()
        names = [c.name for c in sys.constraints]
        assert names == ["continuity", "temperature", "momentum_x", "momentum_z"]

    def test_subset_flags(self):
        sys = RayleighBenard2D(include_momentum=False)
        assert [c.name for c in sys.constraints] == ["continuity", "temperature"]

    def test_required_derivatives_include_laplacians(self):
        sys = RayleighBenard2D()
        symbols = {s.symbol for s in sys.required_derivatives()}
        assert {"T_xx", "T_zz", "u_xx", "u_zz", "w_xx", "w_zz", "p_x", "p_z", "T_t"} <= symbols


class TestResidualsOnAnalyticFields:
    def test_continuity_zero_for_streamfunction_velocity(self):
        """The manufactured solution is exactly divergence free."""
        sim = manufactured_solution(nt=2, nz=32, nx=64)
        lx, lz = sim.lx, sim.lz
        kx, kz = 2 * np.pi / lx, np.pi / lz
        t = sim.times[0]
        z = (np.arange(sim.nz) + 0.5) * (lz / sim.nz)
        x = np.arange(sim.nx) * (lx / sim.nx)
        zz, xx = np.meshgrid(z, x, indexing="ij")
        # analytic derivatives of u = kz cos(kz z) sin(kx x) cos(t), w = -kx sin(kz z) cos(kx x) cos(t)
        u_x = kz * kx * np.cos(kz * zz) * np.cos(kx * xx) * np.cos(t)
        w_z = -kx * kz * np.cos(kz * zz) * np.cos(kx * xx) * np.cos(t)
        sys = divergence_free_system()
        res = sys.residuals_from_arrays({"u_x": u_x, "w_z": w_z})
        assert np.max(np.abs(res["continuity"])) < 1e-12

    def test_advection_diffusion_nonzero_for_generic_field(self):
        sys = advection_diffusion_system(diffusivity=0.1)
        rng = np.random.default_rng(0)
        values = {k: rng.standard_normal(8) for k in ("T_t", "u", "T_x", "w", "T_z", "T_xx", "T_zz")}
        res = sys.residuals_from_arrays(values)["temperature"]
        expected = (values["T_t"] + values["u"] * values["T_x"] + values["w"] * values["T_z"]
                    - 0.1 * values["T_xx"] - 0.1 * values["T_zz"])
        assert np.allclose(res, expected)

    def test_momentum_z_includes_buoyancy(self):
        sys = RayleighBenard2D(rayleigh=1e6, prandtl=1.0)
        n = 5
        zeros = np.zeros(n)
        temperature = np.linspace(0, 1, n)
        values = {s.symbol: zeros for s in sys.required_derivatives()}
        values.update({"p": zeros, "T": temperature, "u": zeros, "w": zeros})
        res = sys.residuals_from_arrays(values)
        # With all derivatives zero, the z-momentum residual reduces to -T.
        assert np.allclose(res["momentum_z"], -temperature)
        assert np.allclose(res["momentum_x"], 0.0)
        assert np.allclose(res["continuity"], 0.0)

    def test_conduction_steady_state_satisfies_temperature_equation(self):
        """Pure conduction (linear T(z), no flow) has zero temperature residual."""
        sys = RayleighBenard2D(rayleigh=1e5, prandtl=1.0)
        n = 16
        zeros = np.zeros(n)
        values = {s.symbol: zeros for s in sys.required_derivatives()}
        values.update({"p": zeros, "T": np.linspace(1, 0, n), "u": zeros, "w": zeros})
        values["T_z"] = np.full(n, -1.0)   # linear conduction profile
        values["T_zz"] = zeros             # second derivative of a linear profile
        res = sys.residuals_from_arrays(values)
        assert np.allclose(res["temperature"], 0.0)
