"""Chaos tests for training: epoch rollback and bit-identical recovery.

The acceptance criterion of the fault-tolerance PR: a training run that
loses a rank mid-epoch (an injected communicator fault), rolls back to the
epoch checkpoint and re-runs must finish with *bitwise* identical
parameters and history to the fault-free run — under the float64 policy
and the float32 policy.
"""

import numpy as np
import pytest

from repro.backend import precision
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.faults import FaultInjected, FaultPlan
from repro.training import DistributedTrainer, Trainer, TrainerConfig


def make_model(dtype="float64", seed=3):
    with precision(dtype):
        return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=seed, unet_norm="group"))


def dist_config(**overrides):
    base = dict(epochs=2, batch_size=1, world_size=4, gamma=0.0,
                steps_per_epoch=2, learning_rate=1e-2, fault_recovery=True)
    base.update(overrides)
    return TrainerConfig(**base)


def assert_same_params(a, b):
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert pa.data.dtype == pb.data.dtype
        assert np.array_equal(pa.data, pb.data)


def assert_same_history(ha, hb):
    assert len(ha) == len(hb)
    for ra, rb in zip(ha.records, hb.records):
        assert set(ra) == set(rb)
        for key in ra:
            if key == "wall_time":
                continue
            assert ra[key] == rb[key], f"history field {key}: {ra[key]} != {rb[key]}"


class TestConfigValidation:
    def test_max_epoch_retries_must_be_non_negative(self):
        with pytest.raises(ValueError):
            TrainerConfig(max_epoch_retries=-1)

    def test_recovery_knobs_do_not_poison_checkpoint_compat(self, tiny_dataset):
        # fault_recovery / max_epoch_retries are runtime knobs: a checkpoint
        # written without them must resume into a trainer that enables them.
        writer = DistributedTrainer(make_model(), tiny_dataset,
                                    config=dist_config(fault_recovery=False))
        writer.train()

    def test_zero_retries_reraises_first_fault(self, tiny_dataset):
        trainer = DistributedTrainer(
            make_model(), tiny_dataset,
            config=dist_config(max_epoch_retries=0))
        plan = FaultPlan(seed=0)
        plan.fail("comm.allreduce", at=(1,), message="rank lost")
        with plan:
            with pytest.raises(FaultInjected, match="rank lost"):
                trainer.train()


class TestDistributedRecovery:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_recovered_run_is_bit_identical(self, tiny_dataset, dtype):
        cfg = dist_config()
        with precision(dtype):
            clean = DistributedTrainer(make_model(dtype), tiny_dataset, config=cfg)
            clean_history = clean.train()

            faulted = DistributedTrainer(make_model(dtype), tiny_dataset, config=cfg)
            # 2 steps/epoch x 1 all-reduce/step: call 3 is epoch 2, step 1 —
            # the fault lands mid-run with one epoch already committed.
            plan = FaultPlan(seed=1, name="rank-loss")
            plan.fail("comm.allreduce", at=(3,), message="rank lost")
            with plan:
                faulted_history = faulted.train()

        assert faulted.epoch_recoveries == 1
        assert plan.injected() == {("comm.allreduce", "raise"): 1}
        assert_same_history(clean_history, faulted_history)
        assert_same_params(clean.model, faulted.model)

    def test_repeated_faults_within_budget_still_recover(self, tiny_dataset):
        cfg = dist_config(max_epoch_retries=2)
        clean = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        clean_history = clean.train()

        faulted = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        plan = FaultPlan(seed=2)
        # Both faults land in epoch 2 (calls 3 and 5): the first rollback's
        # re-run is hit again and a second rollback still converges.
        plan.fail("comm.allreduce", at=(3, 5), message="rank lost")
        with plan:
            faulted_history = faulted.train()
        assert faulted.epoch_recoveries == 2
        assert_same_history(clean_history, faulted_history)
        assert_same_params(clean.model, faulted.model)

    def test_exhausted_retries_reraise(self, tiny_dataset):
        trainer = DistributedTrainer(make_model(), tiny_dataset,
                                     config=dist_config(max_epoch_retries=1))
        plan = FaultPlan(seed=0)
        plan.fail("comm.allreduce", p=1.0, message="network gone")
        with plan:
            with pytest.raises(FaultInjected, match="network gone"):
                trainer.train()
        assert trainer.epoch_recoveries == 1  # one rollback was attempted

    def test_comm_stats_match_after_recovery(self, tiny_dataset):
        # The recovery boundary rewinds communicator counters, so the
        # history's comm telemetry cannot double-count the rolled-back epoch.
        cfg = dist_config()
        clean = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        clean.train()
        faulted = DistributedTrainer(make_model(), tiny_dataset, config=cfg)
        plan = FaultPlan(seed=3)
        plan.fail("comm.allreduce", at=(3,), message="rank lost")
        with plan:
            faulted.train()
        assert faulted.communicator.total_bytes == clean.communicator.total_bytes
        assert faulted.communicator.num_collectives == clean.communicator.num_collectives
        assert len(faulted.communicator.history) == len(clean.communicator.history)


class TestSerialTrainerRecovery:
    def test_epoch_level_fault_recovers_bit_identically(self, tiny_dataset):
        cfg = TrainerConfig(epochs=2, batch_size=1, gamma=0.0, steps_per_epoch=2,
                            learning_rate=1e-2, fault_recovery=True)
        clean = Trainer(make_model(), tiny_dataset, config=cfg)
        clean_history = clean.train()

        faulted = Trainer(make_model(), tiny_dataset, config=cfg)
        plan = FaultPlan(seed=4)
        plan.fail("training.epoch", at=(2,), message="spot instance reclaimed")
        with plan:
            faulted_history = faulted.train()
        assert faulted.epoch_recoveries == 1
        assert_same_history(clean_history, faulted_history)
        assert_same_params(clean.model, faulted.model)

    def test_recovery_disabled_propagates_fault(self, tiny_dataset):
        cfg = TrainerConfig(epochs=2, batch_size=1, gamma=0.0, steps_per_epoch=2,
                            learning_rate=1e-2, fault_recovery=False)
        trainer = Trainer(make_model(), tiny_dataset, config=cfg)
        plan = FaultPlan(seed=0)
        plan.fail("training.epoch", at=(1,), message="spot instance reclaimed")
        with plan:
            with pytest.raises(FaultInjected):
                trainer.train()
        assert trainer.epoch_recoveries == 0


class TestCommunicatorFaultSites:
    def test_send_recv_roundtrip_and_mailboxes(self):
        from repro.distributed.comm import SimulatedCommunicator

        comm = SimulatedCommunicator(2)
        message = np.arange(6, dtype=np.float64)
        comm.send(message, src=0, dst=1, tag=7)
        received = comm.recv(src=0, dst=1, tag=7)
        assert np.array_equal(received, message)
        with pytest.raises(RuntimeError, match="no matching send"):
            comm.recv(src=0, dst=1, tag=7)

    def test_send_site_fires_before_counters_advance(self):
        from repro.distributed.comm import SimulatedCommunicator

        comm = SimulatedCommunicator(2)
        plan = FaultPlan(seed=0)
        plan.fail("comm.send", at=(1,), message="link down")
        with plan:
            with pytest.raises(FaultInjected):
                comm.send(np.zeros(4), src=0, dst=1)
        # The injected fault left the communicator statistics untouched.
        assert comm.total_bytes == 0
        assert comm.num_collectives == 0

    def test_collective_sites_cover_the_catalogue(self):
        from repro.distributed.comm import SimulatedCommunicator

        comm = SimulatedCommunicator(2)
        plan = FaultPlan(seed=0)
        plan.fail("comm.*", every=1, message="partition")
        with plan:
            with pytest.raises(FaultInjected):
                comm.allreduce(np.zeros(4))
            with pytest.raises(FaultInjected):
                comm.broadcast(np.zeros(4), root=0)
            with pytest.raises(FaultInjected):
                comm.barrier()
        assert sorted(plan.counts()) == ["comm.allreduce", "comm.barrier",
                                         "comm.broadcast"]
