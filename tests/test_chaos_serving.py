"""Chaos tests for the serving layer: supervised workers, breakers, shedding.

The survival contract under seeded fault injection: every submitted request
resolves to a *definite* status (``ok`` / ``timeout`` / ``error``) — none
hang — and the server keeps serving after worker crashes.  Fault schedules
are seeded, so each of these scenarios replays identically run to run.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.faults import FaultPlan, Retry
from repro.serving import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    BatchPolicy,
    Client,
    ModelServer,
    QueryRequest,
    ServerOverloadedError,
    ServingUnavailable,
    start_http_server,
    stop_http_server,
)


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()


@pytest.fixture(scope="module")
def domain():
    rng = np.random.default_rng(7)
    return rng.standard_normal((1, 4, 4, 16, 16))


def make_server(model, domain, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("policy", BatchPolicy(max_wait=0.002))
    kwargs.setdefault("breaker_cooldown", 0.05)
    server = ModelServer(model, **kwargs)
    server.register_domain("d", domain)
    return server


def coords(n=8, seed=0):
    return np.random.default_rng(seed).random((n, 3))


# --------------------------------------------------------------------------- #
# Survival under seeded chaos                                                 #
# --------------------------------------------------------------------------- #


class TestChaosSurvival:
    def test_every_request_resolves_definitely_under_chaos(self, model, domain):
        with make_server(model, domain) as server:
            plan = FaultPlan(seed=11, name="serving-chaos")
            plan.fail("serving.worker", every=3, message="replica crash")
            plan.delay("serving.batch", 0.01, p=0.25)
            with plan:
                results = [server.query(QueryRequest("d", coords=coords()), timeout=30)
                           for _ in range(12)]
            statuses = [r.status for r in results]
            assert all(s in (STATUS_OK, STATUS_ERROR) for s in statuses)
            assert STATUS_ERROR in statuses  # the injected crashes surfaced
            assert plan.injected()[("serving.worker", "raise")] >= 1

            # The fleet keeps serving after the chaos window closes.
            post = [server.query(QueryRequest("d", coords=coords()), timeout=30)
                    for _ in range(4)]
            assert all(r.status == STATUS_OK for r in post)

            stats = server.stats()
            assert stats["worker_crashes"] >= 1
            assert stats["errors"] >= 1

    def test_crash_fails_only_the_poisoned_batch(self, model, domain):
        with make_server(model, domain, n_workers=1) as server:
            plan = FaultPlan(seed=0)
            plan.fail("serving.worker", at=(1,), message="one bad batch")
            with plan:
                first = server.query(QueryRequest("d", coords=coords()), timeout=30)
                second = server.query(QueryRequest("d", coords=coords()), timeout=30)
            assert first.status == STATUS_ERROR
            assert "crashed" in first.error and "one bad batch" in first.error
            assert second.status == STATUS_OK
            assert np.isfinite(second.values).all()

    def test_error_result_carries_worker_and_exception_summary(self, model, domain):
        with make_server(model, domain, n_workers=1) as server:
            plan = FaultPlan(seed=0)
            plan.fail("serving.worker", at=(1,), exc=MemoryError, message="replica OOM")
            with plan:
                result = server.query(QueryRequest("d", coords=coords()), timeout=30)
            assert result.status == STATUS_ERROR
            assert "worker-0 crashed" in result.error
            assert "MemoryError" in result.error and "replica OOM" in result.error


# --------------------------------------------------------------------------- #
# Circuit breaker                                                             #
# --------------------------------------------------------------------------- #


class TestWorkerBreakers:
    def test_breaker_trips_and_recovers(self, model, domain):
        with make_server(model, domain, n_workers=2, breaker_threshold=1,
                         breaker_cooldown=0.1) as server:
            plan = FaultPlan(seed=0)
            plan.fail("serving.worker", at=(1,), message="sick replica")
            with plan:
                bad = server.query(QueryRequest("d", coords=coords()), timeout=30)
                assert bad.status == STATUS_ERROR
                # One breaker is open; the other worker keeps serving.
                deadline = time.monotonic() + 5.0
                while ("open" not in server.stats()["breakers"]
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                assert "open" in server.stats()["breakers"]
                ok = server.query(QueryRequest("d", coords=coords()), timeout=30)
                assert ok.status == STATUS_OK

            # After the cooldown a half-open probe succeeds and the breaker
            # closes again; the fleet is whole.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                server.query(QueryRequest("d", coords=coords()), timeout=30)
                if server.stats()["breakers"] == ["closed", "closed"]:
                    break
                time.sleep(0.02)
            assert server.stats()["breakers"] == ["closed", "closed"]
            assert server.stats()["breaker_transitions"] >= 2


# --------------------------------------------------------------------------- #
# Load shedding                                                               #
# --------------------------------------------------------------------------- #


class TestLoadShedding:
    def test_sheds_low_priority_at_watermark(self, model, domain):
        server = make_server(model, domain, n_workers=1, max_pending=4,
                             shed_watermark=0.5, shed_priority=0,
                             policy=BatchPolicy(max_requests=1, max_wait=0.0))
        try:
            plan = FaultPlan(seed=0)
            plan.delay("serving.worker", 0.4, every=1)  # stall the lone worker
            futures = []
            with plan:
                # Priority-1 traffic is above the shed class and fills the
                # queue.  Three submissions keep depth strictly below
                # max_pending even if the stalled worker has not yet pulled
                # the first one, so the later priority-1 admit never trips
                # the hard queue-full rejection.
                for _ in range(3):
                    futures.append(server.submit(
                        QueryRequest("d", coords=coords(), priority=1)))
                deadline = time.monotonic() + 2.0
                while len(server.scheduler) < 2 and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert len(server.scheduler) >= 2  # at/above the 0.5 * 4 watermark

                with pytest.raises(ServerOverloadedError, match="load shed"):
                    server.submit(QueryRequest("d", coords=coords(), priority=0))
                # Higher-priority traffic still gets in at the same depth.
                futures.append(server.submit(
                    QueryRequest("d", coords=coords(), priority=1)))
            for future in futures:
                assert future.result(timeout=30).status == STATUS_OK
            stats = server.stats()
            assert stats["shed"] >= 1
            assert stats["rejected"] >= stats["shed"]  # shed counts as rejected
        finally:
            server.close()

    def test_watermark_validation(self, model):
        with pytest.raises(ValueError, match="shed_watermark"):
            ModelServer(model, shed_watermark=0.0)
        with pytest.raises(ValueError, match="shed_watermark"):
            ModelServer(model, shed_watermark=1.5)


# --------------------------------------------------------------------------- #
# Deadline expiry (satellite): mid-queue expiry under concurrent submitters   #
# --------------------------------------------------------------------------- #


class TestDeadlineExpiry:
    def test_expired_is_inclusive_at_the_deadline_instant(self):
        request = QueryRequest("d", coords=np.zeros((1, 3)), deadline=5.0)
        assert not request.expired(now=4.999)
        assert request.expired(now=5.0)  # exclusive deadline: == is too late
        assert request.expired(now=5.001)

    def test_mid_queue_expiry_under_concurrent_submitters(self, model, domain):
        server = make_server(model, domain, n_workers=1,
                             policy=BatchPolicy(max_requests=2, max_wait=0.0))
        try:
            plan = FaultPlan(seed=0)
            plan.delay("serving.worker", 0.25, every=1)  # every batch stalls
            results, lock = [], threading.Lock()

            def submitter(seed):
                for _ in range(2):
                    # 50 ms deadline vs a 250 ms stall: expired before decode.
                    future = server.submit(
                        QueryRequest("d", coords=coords(seed=seed)), timeout=0.05)
                    outcome = future.result(timeout=30)
                    with lock:
                        results.append(outcome)

            with plan:
                threads = [threading.Thread(target=submitter, args=(i,))
                           for i in range(4)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

            assert len(results) == 8
            # Expired requests resolve STATUS_TIMEOUT, never reach the engine.
            assert all(r.status == STATUS_TIMEOUT for r in results)
            assert all(r.values is None for r in results)
            stats = server.stats()
            assert stats["timed_out"] == 8
            assert stats["points_decoded"] == 0  # nothing was decoded for them
            # Backpressure accounting drained: the queue is empty and the
            # server still admits and serves new work.
            assert len(server.scheduler) == 0
            fresh = server.query(QueryRequest("d", coords=coords()), timeout=30)
            assert fresh.status == STATUS_OK
        finally:
            server.close()


# --------------------------------------------------------------------------- #
# Graceful shutdown                                                           #
# --------------------------------------------------------------------------- #


class TestShutdown:
    def test_close_reports_clean_drain(self, model, domain):
        server = make_server(model, domain)
        server.query(QueryRequest("d", coords=coords()), timeout=30)
        assert server.close() is True
        assert server.close() is True  # idempotent, cached verdict

    def test_close_reports_stuck_worker(self, model, domain, caplog):
        server = make_server(model, domain, n_workers=1)
        plan = FaultPlan(seed=0)
        plan.delay("serving.worker", 0.6, every=1)
        with plan:
            future = server.submit(QueryRequest("d", coords=coords()))
            time.sleep(0.05)  # let the worker pick the batch up and stall
            with caplog.at_level("WARNING", logger="repro.serving"):
                drained = server.close(timeout=0.05)
            assert drained is False
            assert any("did not exit" in r.message for r in caplog.records)
            assert server.close() is False  # the verdict is remembered
            # The abandoned daemon worker still finishes its batch.
            assert future.result(timeout=30).status == STATUS_OK

    def test_stop_http_server_returns_drain_verdict(self, model, domain):
        with make_server(model, domain) as server:
            httpd = start_http_server(server, port=0)
            try:
                port = httpd.server_address[1]
                client = Client(port=port)
                assert client.health()["status"] == "ok"
            finally:
                assert stop_http_server(httpd, timeout=10.0) is True


# --------------------------------------------------------------------------- #
# Client retries                                                              #
# --------------------------------------------------------------------------- #


class TestClientRetry:
    def test_retries_transient_gateway_failures(self, monkeypatch):
        client = Client(port=1, retry=Retry(max_attempts=3, backoff=0.0, jitter=0.0))
        calls = {"n": 0}

        def flaky(method, path, payload=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServingUnavailable("draining")
            return {"status": "ok"}

        monkeypatch.setattr(client, "_call_once", flaky)
        assert client.health() == {"status": "ok"}
        assert calls["n"] == 3

    def test_no_retry_by_default(self, monkeypatch):
        client = Client(port=1)
        calls = {"n": 0}

        def failing(method, path, payload=None):
            calls["n"] += 1
            raise ServingUnavailable("draining")

        monkeypatch.setattr(client, "_call_once", failing)
        with pytest.raises(ServingUnavailable):
            client.health()
        assert calls["n"] == 1

    def test_client_errors_are_not_retried(self, monkeypatch):
        client = Client(port=1, retry=Retry(max_attempts=5, backoff=0.0))
        calls = {"n": 0}

        def bad_request(method, path, payload=None):
            calls["n"] += 1
            raise RuntimeError("POST /query failed (400): bad request")

        monkeypatch.setattr(client, "_call_once", bad_request)
        with pytest.raises(RuntimeError, match="400"):
            client.health()
        assert calls["n"] == 1

    def test_retry_against_live_gateway_shutdown_window(self, model, domain):
        # End-to-end: a 503 from a draining gateway is retried and the call
        # eventually fails with ServingUnavailable once retries exhaust.
        with make_server(model, domain) as server:
            httpd = start_http_server(server, port=0)
            port = httpd.server_address[1]
            server.close()  # scheduler closed: /query now answers 503
            client = Client(port=port,
                            retry=Retry(max_attempts=2, backoff=0.0, jitter=0.0))
            try:
                with pytest.raises(ServingUnavailable):
                    client.query_points("d", coords())
            finally:
                assert stop_http_server(httpd) is True
