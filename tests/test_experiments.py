"""Smoke tests of the experiment runners (micro scale so they stay fast)."""

import numpy as np
import pytest

from repro.experiments import (
    SCALES,
    ExperimentScale,
    build_dataset,
    build_model,
    get_scale,
    run_ablation_allreduce,
    run_ablation_interpolation,
    run_fig2_simulation,
    run_fig7_scaling,
    run_table1_gamma_sweep,
    simulate,
)


@pytest.fixture(scope="module")
def micro_scale():
    """An even smaller scale than 'tiny' so experiment smoke tests stay fast."""
    return SCALES["tiny"].with_overrides(
        hr_shape=(8, 8, 32),
        lr_factors=(2, 2, 4),
        crop_shape_lr=(2, 4, 8),
        n_points=16,
        samples_per_epoch=4,
        epochs=1,
        batch_size=1,
    )


class TestScales:
    def test_presets_exist(self):
        assert {"tiny", "small", "paper"} <= set(SCALES)

    def test_get_scale_by_name_and_object(self):
        assert get_scale("tiny").name == "tiny"
        scale = ExperimentScale(name="custom")
        assert get_scale(scale) is scale
        assert get_scale(None).name == "tiny"
        with pytest.raises(KeyError):
            get_scale("gigantic")

    def test_paper_scale_matches_paper_settings(self):
        paper = SCALES["paper"]
        assert paper.hr_shape == (400, 128, 512)
        assert paper.lr_factors == (4, 8, 8)
        assert paper.samples_per_epoch == 3000
        assert paper.epochs == 100

    def test_get_scale_error_lists_available_scales(self):
        with pytest.raises(KeyError) as excinfo:
            get_scale("gigantic")
        message = str(excinfo.value)
        for name in sorted(SCALES):
            assert name in message

    def test_with_overrides(self):
        scale = SCALES["tiny"].with_overrides(epochs=99)
        assert scale.epochs == 99
        assert SCALES["tiny"].epochs != 99

    def test_with_overrides_unknown_key_lists_valid_fields(self):
        with pytest.raises(KeyError, match="valid fields") as excinfo:
            SCALES["tiny"].with_overrides(epochz=99)
        assert "epochs" in str(excinfo.value)

    def test_model_config_threads_the_scale_seed(self):
        assert SCALES["tiny"].with_overrides(seed=3).model_config().seed == 3
        # An explicit override still wins.
        assert SCALES["tiny"].with_overrides(seed=3).model_config(seed=7).seed == 7

    def test_build_helpers(self, micro_scale):
        sim = simulate(micro_scale)
        assert sim.shape == micro_scale.hr_shape
        ds = build_dataset(micro_scale, results=sim)
        assert ds.lr_shape == (4, 4, 8)
        model = build_model(micro_scale)
        assert model.config.latent_channels == 6


class TestRunners:
    def test_table1_structure(self, micro_scale):
        out = run_table1_gamma_sweep(scale=micro_scale, gammas=(0.0,))
        assert out["experiment"] == "table1_gamma_sweep"
        assert set(out["reports"]) == {"gamma=0"}
        assert "histories" in out

    def test_fig2_structure(self, micro_scale):
        out = run_fig2_simulation(scale=micro_scale)
        assert set(out["fields"]) == {"p", "T", "u", "w"}
        assert out["fields"]["T"].shape == (8, 32)
        assert np.isfinite(out["turbulence_summary"]["Etot"])

    def test_fig7_structure_without_training(self):
        out = run_fig7_scaling(scale="tiny", world_sizes=(1, 8, 128), train_curves=False)
        assert out["efficiency_at_max"] == pytest.approx(0.968, abs=0.02)
        assert set(out["throughput"]) == {1, 8, 128}
        assert out["loss_curves"] == {}

    def test_fig7_loss_curves(self, micro_scale):
        out = run_fig7_scaling(scale=micro_scale, world_sizes=(1, 2), curve_world_sizes=(1,), epochs=1)
        assert 1 in out["loss_curves"]
        assert len(out["loss_curves"][1]["loss"]) == 1
        assert out["loss_curves"][1]["wall_time"][0] > 0

    def test_ablation_interpolation(self, micro_scale):
        out = run_ablation_interpolation(scale=micro_scale)
        assert set(out["reports"]) == {"interpolation=trilinear", "interpolation=nearest"}

    def test_table_runner_is_deterministic(self, micro_scale):
        """Determinism pin: rerunning a table stage reproduces the metric
        reports bitwise (what makes content-addressed caching sound)."""
        first = run_table1_gamma_sweep(scale=micro_scale, gammas=(0.0,))
        second = run_table1_gamma_sweep(scale=micro_scale, gammas=(0.0,))
        r1, r2 = first["reports"]["gamma=0"], second["reports"]["gamma=0"]
        assert r1.nmae == r2.nmae
        assert r1.r2 == r2.r2
        strip = lambda records: [{k: v for k, v in r.items() if k != "wall_time"}
                                 for r in records]
        h1 = strip(first["histories"]["gamma=0"]["records"])
        h2 = strip(second["histories"]["gamma=0"]["records"])
        assert h1 == h2

    def test_ablation_allreduce(self):
        out = run_ablation_allreduce(world_sizes=(1, 8, 128), overlap_fractions=(0.0, 0.9))
        eff_no = out["results"]["overlap=0"][128]["efficiency"]
        eff_yes = out["results"]["overlap=0.9"][128]["efficiency"]
        assert eff_yes > eff_no
        assert out["ring_vs_naive_comm_time"]["ring"] < out["ring_vs_naive_comm_time"]["naive"]
