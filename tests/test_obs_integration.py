"""Cross-subsystem observability: one HTTP request → one four-layer trace.

The acceptance test for the unified observability layer: a single serving
request through the HTTP gateway must yield a single Chrome trace whose
spans cover all four layers — gateway/scheduler, engine, compiled
executor, and tape ops — correctly nested by parent links, while leaving
every served value bit-identical to an uninstrumented run.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.inference import InferenceEngine
from repro.serving import (
    STATUS_OK,
    BatchPolicy,
    Client,
    ModelServer,
    start_http_server,
    stop_http_server,
)


@pytest.fixture(autouse=True)
def obs_clean():
    """Instrumentation off and trace buffer empty around every test."""
    obs.disable()
    obs.clear_events()
    yield
    obs.disable()
    obs.clear_events()


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()


@pytest.fixture(scope="module")
def domain():
    rng = np.random.default_rng(11)
    return rng.standard_normal((1, 4, 4, 16, 16))


def _span_events(events, trace_id):
    """Events of one trace, keyed by span_id."""
    return {e["args"]["span_id"]: e for e in events
            if e["args"].get("trace_id") == trace_id}


class TestSingleRequestTrace:
    def test_four_layer_chrome_trace(self, tmp_path, model, domain):
        server = ModelServer(model, n_workers=1,
                             policy=BatchPolicy(max_wait=0.0), compile=True)
        server.register_domain("dom", domain)
        httpd = start_http_server(server)
        client = Client(port=httpd.server_address[1])
        coords = np.random.default_rng(3).random((24, 3))
        try:
            # Warm once with instrumentation off: the compiled decoder
            # traces its plan and the latent tile lands in the cache, so
            # the traced request below exercises the steady-state path.
            warm = client.query_points("dom", coords)
            assert warm.status == STATUS_OK

            obs.enable(trace=True, profile_ops=True, profile_kernels=True)
            result = client.query_points("dom", coords)
            obs.disable()
            assert result.status == STATUS_OK
            assert np.array_equal(result.values, warm.values)

            path = obs.write_chrome_trace(str(tmp_path / "trace.json"))
            with open(path) as fh:
                doc = json.load(fh)
            events = doc["traceEvents"]
            gateway = [e for e in events if e["name"] == "gateway.request"]
            assert len(gateway) == 1, "one request must open exactly one gateway span"
            trace_id = gateway[0]["args"]["trace_id"]
            spans = _span_events(events, trace_id)
            names = {e["name"] for e in spans.values()}

            # All four layers are present in the single trace.
            assert "scheduler.run_batch" in names
            assert "engine.decode_tile" in names
            assert "compile.plan_run" in names
            assert any(n.startswith("tape.") for n in names)
            assert any(n.startswith("kernel.") for n in names)

            # Parent links chain every layer back up to the gateway span.
            gateway_id = gateway[0]["args"]["span_id"]

            def chain_to_root(event):
                seen = set()
                while "parent_id" in event["args"]:
                    pid = event["args"]["parent_id"]
                    assert pid not in seen, "parent cycle"
                    seen.add(pid)
                    event = spans[pid]
                return event["args"]["span_id"]

            by_name = {}
            for e in spans.values():
                by_name.setdefault(e["name"].split(".", 1)[0], e)
            for layer in ("scheduler", "engine", "compile", "tape", "kernel"):
                assert chain_to_root(by_name[layer]) == gateway_id, \
                    f"{layer} span does not chain to the gateway root"

            # Nesting is structural, not just labels: the batch span is a
            # direct child of the gateway span, and the engine decode span
            # sits under the batch span.
            batch = by_name["scheduler"]
            assert batch["args"]["parent_id"] == gateway_id
            decode = next(e for e in spans.values()
                          if e["name"] == "engine.decode_tile")
            assert spans[decode["args"]["parent_id"]]["name"] == "scheduler.run_batch"
        finally:
            stop_http_server(httpd)
            server.close()

    def test_metrics_endpoint_scrapes_registries(self, model, domain):
        server = ModelServer(model, n_workers=1, compile=True)
        server.register_domain("dom", domain)
        httpd = start_http_server(server)
        client = Client(port=httpd.server_address[1])
        coords = np.random.default_rng(4).random((8, 3))
        try:
            assert client.query_points("dom", coords).status == STATUS_OK
            text = client.metrics_text()
            assert "serving_completed 1.0" in text
            assert "serving_queue_depth 0.0" in text
            # Global-registry series (plan cache, tile cache collectors)
            # are merged into the same exposition.
            assert "compile_plan_hits" in text or "compile_retraces" in text
            assert "engine_cache_misses" in text
        finally:
            stop_http_server(httpd)
            server.close()


class TestBitIdenticalUnderInstrumentation:
    def test_engine_outputs_unchanged(self, model, domain):
        coords = np.random.default_rng(5).random((40, 3))
        engine = InferenceEngine(model, tile_shape=(4, 16, 16), compile=True)
        baseline_pts = engine.query_points(domain, coords)
        baseline_grid = engine.predict_grid(domain, (4, 16, 16))
        obs.enable(trace=True, profile_ops=True, profile_kernels=True,
                   profile_memory=True)
        instrumented_pts = engine.query_points(domain, coords)
        instrumented_grid = engine.predict_grid(domain, (4, 16, 16))
        obs.disable()
        assert np.array_equal(instrumented_pts, baseline_pts)
        assert np.array_equal(instrumented_grid, baseline_grid)

    def test_server_outputs_unchanged(self, model, domain):
        coords = np.random.default_rng(9).random((16, 3))
        with ModelServer(model, n_workers=2) as server:
            server.register_domain("dom", domain)
            from repro.serving import QueryRequest

            baseline = server.query(QueryRequest("dom", coords=coords))
            obs.enable(trace=True, profile_ops=True, profile_kernels=True)
            instrumented = server.query(QueryRequest("dom", coords=coords))
            obs.disable()
        assert baseline.status == STATUS_OK and instrumented.status == STATUS_OK
        assert np.array_equal(instrumented.values, baseline.values)
