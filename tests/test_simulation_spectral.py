"""Spectral/FD derivative operators and the vectorised tridiagonal solver."""

import numpy as np
import pytest

from repro.simulation import spectral


class TestSpectralDerivatives:
    def test_ddx_exact_on_sine(self):
        lx = 4.0
        nx = 64
        x = np.arange(nx) * (lx / nx)
        f = np.sin(2 * np.pi * x / lx)[None, :].repeat(3, axis=0)
        expected = (2 * np.pi / lx) * np.cos(2 * np.pi * x / lx)
        assert np.allclose(spectral.ddx(f, lx), expected[None, :], atol=1e-12)

    def test_d2dx2_exact_on_sine(self):
        lx = 2.0
        nx = 32
        x = np.arange(nx) * (lx / nx)
        k = 2 * np.pi / lx
        f = np.cos(k * x)[None, :]
        assert np.allclose(spectral.d2dx2(f, lx), -(k**2) * f, atol=1e-10)

    def test_ddx_constant_is_zero(self):
        f = np.full((4, 16), 3.0)
        assert np.allclose(spectral.ddx(f, 1.0), 0.0, atol=1e-13)

    def test_wavenumbers_shape(self):
        k = spectral.wavenumbers(16, 4.0)
        assert k.shape == (9,)
        assert k[0] == 0.0


class TestZDerivatives:
    def test_ddz_linear_profile(self):
        nz, nx = 16, 4
        dz = 1.0 / nz
        z = (np.arange(nz) + 0.5) * dz
        f = np.repeat((2.0 * z)[:, None], nx, axis=1)
        ghosts = spectral.dirichlet_ghosts(f, 0.0, 2.0)
        df = spectral.ddz(f, dz, ghosts)
        assert np.allclose(df, 2.0, atol=1e-10)

    def test_d2dz2_quadratic_profile(self):
        nz, nx = 32, 3
        dz = 1.0 / nz
        z = (np.arange(nz) + 0.5) * dz
        f = np.repeat((z**2)[:, None], nx, axis=1)
        ghosts = spectral.dirichlet_ghosts(f, 0.0, 1.0)
        d2 = spectral.d2dz2(f, dz, ghosts)
        # interior rows are exact for a quadratic; boundary rows are affected by the
        # ghost-cell linearisation of the Dirichlet value
        assert np.allclose(d2[1:-1], 2.0, atol=1e-8)

    def test_neumann_ghosts_zero_gradient(self):
        f = np.random.default_rng(0).standard_normal((8, 4))
        ghosts = spectral.neumann_ghosts(f)
        df = spectral.ddz(f, 0.1, ghosts)
        assert np.allclose(df[0], (f[1] - f[0]) / 0.2)

    def test_dirichlet_ghost_values(self):
        f = np.ones((4, 2))
        bottom, top = spectral.dirichlet_ghosts(f, 3.0, -1.0)
        assert np.allclose(bottom, 5.0)   # 2*3 - 1
        assert np.allclose(top, -3.0)     # 2*(-1) - 1


class TestThomasSolver:
    def test_matches_dense_solve(self, rng):
        n = 20
        a, c = 1.0, 1.0
        diag = -2.5 + rng.random((3, n)) * 0.1
        solver = spectral.ThomasSolver(a, diag, c)
        rhs = rng.standard_normal((3, n))
        x = solver.solve(rhs)
        for s in range(3):
            mat = np.diag(diag[s]) + np.diag(np.full(n - 1, a), -1) + np.diag(np.full(n - 1, c), 1)
            assert np.allclose(mat @ x[s], rhs[s], atol=1e-9)

    def test_complex_rhs(self, rng):
        n = 10
        diag = np.full((2, n), -3.0)
        solver = spectral.ThomasSolver(1.0, diag, 1.0)
        rhs = rng.standard_normal((2, n)) + 1j * rng.standard_normal((2, n))
        x = solver.solve(rhs)
        mat = np.diag(np.full(n, -3.0)) + np.diag(np.ones(n - 1), -1) + np.diag(np.ones(n - 1), 1)
        assert np.allclose(mat @ x[0], rhs[0])

    def test_shape_validation(self):
        solver = spectral.ThomasSolver(1.0, np.full((2, 5), -3.0), 1.0)
        with pytest.raises(ValueError):
            solver.solve(np.zeros((2, 6)))
        with pytest.raises(ValueError):
            spectral.ThomasSolver(1.0, np.zeros(5), 1.0)

    def test_singular_diagonal_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            spectral.ThomasSolver(1.0, np.zeros((1, 4)), 1.0)
