"""Gradient checks and behaviour tests for the differentiable primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, grad, gradcheck, ops


def t(arr, requires_grad=True):
    return Tensor(np.asarray(arr, dtype=np.float64), requires_grad=requires_grad)


# --------------------------------------------------------------------------- elementwise
class TestElementwiseForward:
    def test_add(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((3, 4))
        assert np.allclose(ops.add(t(a), t(b)).data, a + b)

    def test_sub(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        assert np.allclose(ops.sub(t(a), t(b)).data, a - b)

    def test_mul(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        assert np.allclose(ops.mul(t(a), t(b)).data, a * b)

    def test_div(self, rng):
        a = rng.standard_normal(5)
        b = rng.standard_normal(5) + 3.0
        assert np.allclose(ops.div(t(a), t(b)).data, a / b)

    def test_neg(self):
        assert np.allclose(ops.neg(t([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        assert np.allclose(ops.pow(t([2.0, 3.0]), 3.0).data, [8.0, 27.0])

    def test_exp_log_roundtrip(self, rng):
        a = np.abs(rng.standard_normal(6)) + 0.5
        assert np.allclose(ops.log(ops.exp(t(a))).data, a)

    def test_sqrt(self):
        assert np.allclose(ops.sqrt(t([4.0, 9.0])).data, [2.0, 3.0])

    def test_trig(self):
        x = np.array([0.0, np.pi / 2])
        assert np.allclose(ops.sin(t(x)).data, np.sin(x))
        assert np.allclose(ops.cos(t(x)).data, np.cos(x))

    def test_relu(self):
        assert np.allclose(ops.relu(t([-1.0, 2.0, 0.0])).data, [0.0, 2.0, 0.0])

    def test_leaky_relu(self):
        out = ops.leaky_relu(t([-2.0, 3.0]), negative_slope=0.1)
        assert np.allclose(out.data, [-0.2, 3.0])

    def test_abs(self):
        assert np.allclose(ops.abs(t([-1.5, 2.0])).data, [1.5, 2.0])

    def test_sigmoid_range(self, rng):
        x = rng.standard_normal(100) * 10
        s = ops.sigmoid(t(x)).data
        assert np.all(s > 0) and np.all(s < 1)
        assert np.allclose(s, 1.0 / (1.0 + np.exp(-x)))

    def test_softplus_matches_reference(self, rng):
        x = rng.standard_normal(50) * 5
        assert np.allclose(ops.softplus(t(x)).data, np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0))

    def test_softplus_extreme_values_stable(self):
        out = ops.softplus(t([-1000.0, 1000.0])).data
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1000.0)

    def test_maximum_minimum(self):
        a, b = t([1.0, 5.0]), t([3.0, 2.0])
        assert np.allclose(ops.maximum(a, b).data, [3.0, 5.0])
        assert np.allclose(ops.minimum(a, b).data, [1.0, 2.0])

    def test_clip_by_value(self):
        out = ops.clip_by_value(t([-5.0, 0.5, 7.0]), -1.0, 1.0)
        assert np.allclose(out.data, [-1.0, 0.5, 1.0])


class TestElementwiseGradients:
    @pytest.mark.parametrize("fn", [
        ops.exp, ops.tanh, ops.sigmoid, ops.softplus, ops.sin, ops.cos, ops.abs,
    ])
    def test_unary_gradcheck(self, fn, rng):
        x = t(rng.standard_normal((3, 4)) + 0.1)
        assert gradcheck(lambda a: ops.sum(fn(a)), [x])

    def test_log_gradcheck(self, rng):
        x = t(np.abs(rng.standard_normal((3, 3))) + 0.5)
        assert gradcheck(lambda a: ops.sum(ops.log(a)), [x])

    def test_pow_gradcheck(self, rng):
        x = t(np.abs(rng.standard_normal(6)) + 0.5)
        assert gradcheck(lambda a: ops.sum(ops.pow(a, 2.5)), [x])

    def test_binary_gradcheck(self, rng):
        a, b = t(rng.standard_normal((2, 3))), t(rng.standard_normal((2, 3)) + 2.0)
        assert gradcheck(lambda x, y: ops.sum(ops.mul(x, y)), [a, b])
        assert gradcheck(lambda x, y: ops.sum(ops.div(x, y)), [a, b])
        assert gradcheck(lambda x, y: ops.sum(ops.sub(x, y)), [a, b])

    def test_broadcast_gradcheck(self, rng):
        a = t(rng.standard_normal((4, 3)))
        b = t(rng.standard_normal((1, 3)))
        c = t(rng.standard_normal(()))
        assert gradcheck(lambda x, y: ops.sum(ops.add(x, y)), [a, b])
        assert gradcheck(lambda x, y: ops.sum(ops.mul(x, y)), [a, c])

    def test_maximum_gradcheck(self, rng):
        a, b = t(rng.standard_normal(8)), t(rng.standard_normal(8))
        assert gradcheck(lambda x, y: ops.sum(ops.maximum(x, y)), [a, b])


# --------------------------------------------------------------------------- matmul / reductions / shape
class TestLinearAlgebra:
    def test_matmul_2d(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        assert np.allclose(ops.matmul(t(a), t(b)).data, a @ b)

    def test_matmul_batched(self, rng):
        a, b = rng.standard_normal((2, 3, 4)), rng.standard_normal((2, 4, 5))
        assert np.allclose(ops.matmul(t(a), t(b)).data, a @ b)

    def test_matmul_gradcheck(self, rng):
        a, b = t(rng.standard_normal((3, 4))), t(rng.standard_normal((4, 2)))
        assert gradcheck(lambda x, y: ops.sum(ops.matmul(x, y)), [a, b])

    def test_matmul_broadcast_weight_gradcheck(self, rng):
        a = t(rng.standard_normal((2, 5, 3)))
        w = t(rng.standard_normal((3, 4)))
        assert gradcheck(lambda x, y: ops.sum(ops.square(ops.matmul(x, y))), [a, w], atol=1e-4)

    def test_dot_outer(self, rng):
        a, b = rng.standard_normal(5), rng.standard_normal(5)
        assert np.allclose(ops.dot(t(a), t(b)).data, a @ b)
        assert np.allclose(ops.outer(t(a), t(b)).data, np.outer(a, b))

    def test_norm(self, rng):
        a = rng.standard_normal(10)
        assert ops.norm(t(a), 2).data == pytest.approx(np.linalg.norm(a))
        assert ops.norm(t(a), 1).data == pytest.approx(np.abs(a).sum())


class TestReductionsAndShape:
    def test_sum_axis(self, rng):
        a = rng.standard_normal((3, 4, 5))
        assert np.allclose(ops.sum(t(a), axis=1).data, a.sum(axis=1))
        assert np.allclose(ops.sum(t(a), axis=(0, 2), keepdims=True).data, a.sum(axis=(0, 2), keepdims=True))

    def test_mean_var(self, rng):
        a = rng.standard_normal((4, 6))
        assert np.allclose(ops.mean(t(a), axis=0).data, a.mean(axis=0))
        assert np.allclose(ops.var(t(a), axis=1).data, a.var(axis=1))

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 2), False)])
    def test_sum_gradcheck(self, rng, axis, keepdims):
        a = t(rng.standard_normal((2, 3, 4)))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.sum(x, axis=axis, keepdims=keepdims))), [a])

    def test_mean_gradcheck(self, rng):
        a = t(rng.standard_normal((3, 5)))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.mean(x, axis=1))), [a])

    def test_var_gradcheck(self, rng):
        a = t(rng.standard_normal((4, 3)))
        assert gradcheck(lambda x: ops.sum(ops.var(x, axis=0)), [a], atol=1e-4)

    def test_reshape_transpose(self, rng):
        a = rng.standard_normal((2, 3, 4))
        assert ops.reshape(t(a), (6, 4)).shape == (6, 4)
        assert ops.reshape(t(a), (-1, 4)).shape == (6, 4)
        assert ops.transpose(t(a), (2, 0, 1)).shape == (4, 2, 3)
        assert np.allclose(ops.swap_last_axes(t(a)).data, np.swapaxes(a, -1, -2))

    def test_reshape_gradcheck(self, rng):
        a = t(rng.standard_normal((2, 6)))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.reshape(x, (3, 4)))), [a])

    def test_transpose_gradcheck(self, rng):
        a = t(rng.standard_normal((2, 3, 4)))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.transpose(x, (1, 2, 0)))), [a])

    def test_broadcast_to_gradcheck(self, rng):
        a = t(rng.standard_normal((1, 4)))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.broadcast_to(x, (3, 4)))), [a])

    def test_getitem_slice(self, rng):
        a = rng.standard_normal((4, 5))
        out = ops.getitem(t(a), (slice(1, 3), slice(None)))
        assert np.allclose(out.data, a[1:3])

    def test_getitem_gradcheck(self, rng):
        a = t(rng.standard_normal((4, 5)))
        idx = (np.array([0, 2, 2]), slice(None))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.getitem(x, idx))), [a])

    def test_put_index_inverse_of_getitem(self, rng):
        a = rng.standard_normal((4, 3))
        idx = (np.array([1, 3]),)
        scattered = ops.put_index(t(a[idx]), idx, (4, 3))
        expected = np.zeros((4, 3))
        expected[idx] = a[idx]
        assert np.allclose(scattered.data, expected)

    def test_concatenate(self, rng):
        a, b = rng.standard_normal((2, 3)), rng.standard_normal((2, 5))
        out = ops.concatenate([t(a), t(b)], axis=1)
        assert np.allclose(out.data, np.concatenate([a, b], axis=1))

    def test_concatenate_gradcheck(self, rng):
        a, b = t(rng.standard_normal((2, 3))), t(rng.standard_normal((2, 2)))
        assert gradcheck(lambda x, y: ops.sum(ops.square(ops.concatenate([x, y], axis=1))), [a, b])

    def test_stack(self, rng):
        a, b = rng.standard_normal(4), rng.standard_normal(4)
        out = ops.stack([t(a), t(b)], axis=0)
        assert np.allclose(out.data, np.stack([a, b]))

    def test_pad_gradcheck(self, rng):
        a = t(rng.standard_normal((2, 3)))
        assert gradcheck(lambda x: ops.sum(ops.square(ops.pad(x, ((1, 1), (0, 2))))), [a])

    def test_expand_squeeze(self, rng):
        a = rng.standard_normal((3, 4))
        assert ops.expand_dims(t(a), 1).shape == (3, 1, 4)
        assert ops.expand_dims(t(a), -1).shape == (3, 4, 1)
        assert ops.squeeze(ops.expand_dims(t(a), 0)).shape == (3, 4)

    def test_losses(self, rng):
        p, y = rng.standard_normal((5, 3)), rng.standard_normal((5, 3))
        assert ops.l1_loss(t(p), t(y)).data == pytest.approx(np.abs(p - y).mean())
        assert ops.mse_loss(t(p), t(y)).data == pytest.approx(((p - y) ** 2).mean())


# --------------------------------------------------------------------------- higher order
class TestHigherOrder:
    def test_second_derivative_polynomial(self):
        x = t([0.5, 1.5, -2.0])
        y = ops.sum(ops.pow(x, 4.0))
        g1 = grad(y, x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        assert np.allclose(g2.data, 12.0 * x.data**2)

    def test_second_derivative_sin(self):
        x = t([0.1, 0.7, 2.0])
        y = ops.sum(ops.sin(x))
        g1 = grad(y, x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        assert np.allclose(g2.data, -np.sin(x.data))

    def test_second_derivative_softplus(self):
        x = t([0.3, -0.8, 1.2])
        y = ops.sum(ops.softplus(x))
        g1 = grad(y, x, create_graph=True)
        g2 = grad(ops.sum(g1), x)
        s = 1.0 / (1.0 + np.exp(-x.data))
        assert np.allclose(g2.data, s * (1 - s))

    def test_mixed_partials_through_mlp_like_graph(self, rng):
        # d/dw of dy/dx for y = tanh(x*w): reference via finite differences on w.
        x = t(np.array([0.4, -0.3]))
        w = t(np.array(0.7))
        def dy_dx(weight):
            y = ops.sum(ops.tanh(ops.mul(x, weight)))
            return grad(y, x, create_graph=True)
        g = dy_dx(w)
        loss = ops.sum(ops.square(g))
        gw = grad(loss, w)
        eps = 1e-5
        plus = np.sum(grad(ops.sum(ops.tanh(ops.mul(x, t(w.data + eps)))), x, create_graph=True).data ** 2)
        minus = np.sum(grad(ops.sum(ops.tanh(ops.mul(x, t(w.data - eps)))), x, create_graph=True).data ** 2)
        assert gw.data == pytest.approx((plus - minus) / (2 * eps), rel=1e-4)

    def test_gather_second_order(self, rng):
        g = t(rng.standard_normal((5, 3)))
        idx = (np.array([0, 1, 4]), slice(None))
        y = ops.sum(ops.pow(ops.getitem(g, idx), 3.0))
        g1 = grad(y, g, create_graph=True)
        g2 = grad(ops.sum(g1), g)
        expected = np.zeros((5, 3))
        expected[idx] = 6.0 * g.data[idx]
        assert np.allclose(g2.data, expected)


# --------------------------------------------------------------------------- property based
@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
def test_add_commutative(n, m):
    rng = np.random.default_rng(n * 10 + m)
    a, b = rng.standard_normal((n, m)), rng.standard_normal((n, m))
    assert np.allclose(ops.add(t(a), t(b)).data, ops.add(t(b), t(a)).data)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=20))
def test_relu_idempotent(values):
    x = t(values)
    once = ops.relu(x)
    twice = ops.relu(once)
    assert np.allclose(once.data, twice.data)
    assert np.all(once.data >= 0)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=16))
def test_sum_matches_numpy(values):
    x = t(values)
    assert ops.sum(x).data == pytest.approx(np.sum(values), rel=1e-10, abs=1e-10)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=2, max_value=6))
def test_matmul_transpose_identity(n, m):
    rng = np.random.default_rng(n * 7 + m)
    a = rng.standard_normal((n, m))
    b = rng.standard_normal((m, n))
    lhs = ops.matmul(t(a), t(b)).data
    rhs = ops.swap_last_axes(ops.matmul(ops.swap_last_axes(t(b)), ops.swap_last_axes(t(a)))).data
    assert np.allclose(lhs, rhs)
