"""Docstring coverage of the public API.

Three enforcement tiers:

1. every module under ``repro`` carries a module docstring;
2. every public class and public module-level function, package-wide,
   carries a docstring;
3. for the *entry-point* modules (the model/config/encoder core and the
   whole inference subsystem, plus the ``nn.Module`` base), public methods
   and properties must be documented too.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

#: Modules whose public *methods* must also carry docstrings (tier 3).
METHOD_COVERAGE_MODULES = (
    "repro",
    "repro.core.model",
    "repro.core.config",
    "repro.core.unet",
    "repro.core.imnet",
    "repro.core.latent_grid",
    "repro.inference.engine",
    "repro.inference.planner",
    "repro.inference.tiling",
    "repro.inference.cache",
    "repro.nn.module",
    "repro.serving.requests",
    "repro.serving.scheduler",
    "repro.serving.server",
    "repro.serving.telemetry",
    "repro.serving.api",
    "repro.utils.timing",
    "repro.obs.runtime",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.obs.profile",
    "repro.obs.export",
)


def iter_modules():
    """Import and yield every module in the ``repro`` package."""
    yield "repro", repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name, importlib.import_module(info.name)


def public_members(module_name, module):
    """Yield ``(qualified_name, object)`` for public classes/functions defined here."""
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        yield name, obj


def test_every_module_has_a_docstring():
    missing = [name for name, mod in iter_modules() if not (mod.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_and_functions_have_docstrings():
    missing = []
    for mod_name, mod in iter_modules():
        for name, obj in public_members(mod_name, mod):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{mod_name}.{name}")
    assert not missing, f"undocumented public classes/functions: {missing}"


def test_entry_point_methods_have_docstrings():
    missing = []
    for mod_name, mod in iter_modules():
        if mod_name not in METHOD_COVERAGE_MODULES:
            continue
        for cls_name, cls in public_members(mod_name, mod):
            if not inspect.isclass(cls):
                continue
            for attr_name, attr in vars(cls).items():
                if attr_name.startswith("_"):
                    continue
                if isinstance(attr, property):
                    doc = attr.fget.__doc__ if attr.fget else None
                elif inspect.isfunction(attr) or isinstance(attr, (classmethod, staticmethod)):
                    doc = attr.__doc__
                else:
                    continue
                if not (doc or "").strip():
                    missing.append(f"{mod_name}.{cls_name}.{attr_name}")
    assert not missing, f"undocumented entry-point methods: {missing}"


def test_package_exports_resolve():
    """Every name in ``repro.__all__`` exists and is documented."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if name == "__version__":
            assert isinstance(obj, str)
            continue
        assert (inspect.getdoc(obj) or "").strip(), f"repro.{name} lacks a docstring"


@pytest.mark.parametrize("module_name", METHOD_COVERAGE_MODULES)
def test_method_coverage_modules_importable(module_name):
    importlib.import_module(module_name)
