"""PDE expression layer: symbol parsing, constraints, residual evaluation."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.pde import (
    Constraint,
    PDESystem,
    Term,
    available_pde_systems,
    make_pde_system,
    parse_symbol,
    register_pde_system,
)

FIELDS = ("p", "T", "u", "w")
COORDS = ("t", "z", "x")


class TestParseSymbol:
    def test_plain_field(self):
        spec = parse_symbol("T", FIELDS, COORDS)
        assert spec.field == "T" and spec.coords == () and spec.order == 0

    def test_first_derivative(self):
        spec = parse_symbol("u_x", FIELDS, COORDS)
        assert spec.field == "u" and spec.coords == ("x",) and spec.order == 1
        assert spec.symbol == "u_x"

    def test_second_derivative(self):
        spec = parse_symbol("T_zz", FIELDS, COORDS)
        assert spec.coords == ("z", "z") and spec.order == 2

    def test_mixed_derivative(self):
        spec = parse_symbol("w_tx", FIELDS, COORDS)
        assert spec.coords == ("t", "x")

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError):
            parse_symbol("q_x", FIELDS, COORDS)

    def test_unknown_coord_raises(self):
        with pytest.raises(ValueError):
            parse_symbol("u_y", FIELDS, COORDS)

    def test_bare_unknown_symbol_raises(self):
        with pytest.raises(ValueError):
            parse_symbol("vorticity", FIELDS, COORDS)


class TestTermsAndConstraints:
    def test_term_product(self):
        term = Term(2.0, ("u", "T_x"))
        values = {"u": Tensor(np.array([1.0, 2.0])), "T_x": Tensor(np.array([3.0, 4.0]))}
        assert np.allclose(term.evaluate(values).data, [6.0, 16.0])

    def test_term_missing_symbol(self):
        with pytest.raises(KeyError):
            Term(1.0, ("u",)).evaluate({})

    def test_term_empty_symbols(self):
        with pytest.raises(ValueError):
            Term(1.0, ()).evaluate({"u": Tensor(np.zeros(2))})

    def test_constraint_residual_sum(self):
        c = Constraint("c", [Term(1.0, ("u_x",)), Term(1.0, ("w_z",))])
        values = {"u_x": Tensor(np.array([1.0, -2.0])), "w_z": Tensor(np.array([-1.0, 2.0]))}
        assert np.allclose(c.residual(values).data, 0.0)

    def test_constraint_symbols(self):
        c = Constraint("c", [Term(1.0, ("u", "u_x")), Term(-0.5, ("T_zz",))])
        assert c.symbols() == {"u", "u_x", "T_zz"}


class TestPDESystem:
    def test_add_constraint_and_required_derivatives(self):
        sys = PDESystem(FIELDS, COORDS)
        sys.add_constraint("continuity", [(1.0, ["u_x"]), (1.0, ["w_z"])])
        sys.add_constraint("diffusion", [(1.0, ["T_t"]), (-0.1, ["T_xx"]), (-0.1, ["T_zz"])])
        symbols = [s.symbol for s in sys.required_derivatives()]
        assert symbols == ["T_t", "u_x", "w_z", "T_xx", "T_zz"]
        assert set(sys.required_fields()) == {"T", "u", "w"}

    def test_third_order_rejected(self):
        sys = PDESystem(FIELDS, COORDS)
        with pytest.raises(ValueError):
            sys.add_constraint("bad", [(1.0, ["T_xxx"])])

    def test_residuals_from_arrays(self):
        sys = PDESystem(FIELDS, COORDS)
        sys.add_constraint("continuity", [(1.0, ["u_x"]), (1.0, ["w_z"])])
        res = sys.residuals_from_arrays({"u_x": np.ones(4), "w_z": -np.ones(4)})
        assert np.allclose(res["continuity"], 0.0)

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            PDESystem(("u", "u"), COORDS)

    def test_duplicate_coords_rejected(self):
        with pytest.raises(ValueError):
            PDESystem(FIELDS, ("t", "t", "x"))

    def test_residual_values_are_tensors_with_graph(self):
        sys = PDESystem(FIELDS, COORDS)
        sys.add_constraint("c", [(1.0, ["u", "u_x"])])
        u = Tensor(np.ones(3), requires_grad=True)
        ux = Tensor(np.full(3, 2.0), requires_grad=True)
        res = sys.residuals({"u": u, "u_x": ux})["c"]
        assert res.requires_grad


class TestRegistry:
    def test_builtin_systems_available(self):
        names = available_pde_systems()
        assert "rayleigh_benard" in names
        assert "divergence_free" in names
        assert "none" in names

    def test_make_system(self):
        sys = make_pde_system("divergence_free")
        assert len(sys.constraints) == 1

    def test_make_with_kwargs(self):
        sys = make_pde_system("rayleigh_benard", rayleigh=1e4, prandtl=2.0)
        assert sys.rayleigh == 1e4

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_pde_system("navier_stokes_3d")

    def test_register_and_overwrite_guard(self):
        register_pde_system("custom_test_system", lambda: PDESystem(FIELDS, COORDS), overwrite=True)
        assert "custom_test_system" in available_pde_systems()
        with pytest.raises(ValueError):
            register_pde_system("custom_test_system", lambda: PDESystem(FIELDS, COORDS))
