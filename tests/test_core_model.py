"""End-to-end MeshfreeFlowNet model: forward, dense prediction, derivatives."""

import numpy as np
import pytest

from repro.autodiff import Tensor, ops
from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.pde import RayleighBenard2D, divergence_free_system


@pytest.fixture
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())


class TestForward:
    def test_point_prediction_shape(self, model, tiny_lowres, tiny_coords):
        out = model(tiny_lowres, tiny_coords)
        assert out.shape == (2, 12, 4)

    def test_latent_grid_shape(self, model, tiny_lowres):
        grid = model.latent_grid(tiny_lowres)
        assert grid.shape == (2, model.config.latent_channels, 2, 8, 8)

    def test_decode_precomputed_grid_matches_forward(self, model, tiny_lowres, tiny_coords):
        direct = model(tiny_lowres, tiny_coords)
        grid = model.latent_grid(tiny_lowres)
        decoded = model.decode(grid, tiny_coords)
        assert np.allclose(direct.data, decoded.data)

    def test_deterministic_given_seed(self, tiny_lowres, tiny_coords):
        m1 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=7))
        m2 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(seed=7))
        assert np.allclose(m1(tiny_lowres, tiny_coords).data, m2(tiny_lowres, tiny_coords).data)

    def test_count_parameters(self, model):
        counts = model.count_parameters()
        assert counts["total"] == counts["unet"] + counts["imnet"]
        assert counts["total"] > 0

    def test_gradients_reach_both_subnetworks(self, model, tiny_lowres, tiny_coords):
        out = model(tiny_lowres, tiny_coords)
        ops.sum(ops.square(out)).backward()
        assert all(p.grad is not None for p in model.unet.parameters())
        assert all(p.grad is not None for p in model.imnet.parameters())


class TestPredictGrid:
    def test_output_shape(self, model, tiny_lowres):
        out = model.predict_grid(tiny_lowres, (4, 16, 16), chunk_size=300)
        assert out.shape == (2, 4, 4, 16, 16)
        assert np.isfinite(out).all()

    def test_chunking_invariance(self, model, tiny_lowres):
        small_chunks = model.predict_grid(tiny_lowres, (2, 8, 8), chunk_size=17)
        one_chunk = model.predict_grid(tiny_lowres, (2, 8, 8), chunk_size=10_000)
        assert np.allclose(small_chunks, one_chunk)

    def test_super_resolve_factors(self, model, tiny_lowres):
        out = model.super_resolve(tiny_lowres, (2, 2, 2))
        assert out.shape == (2, 4, 4, 16, 16)

    def test_bad_output_shape(self, model, tiny_lowres):
        with pytest.raises(ValueError):
            model.predict_grid(tiny_lowres, (4, 16))


class TestDerivatives:
    def test_values_contains_all_symbols(self, model, tiny_lowres, tiny_coords):
        pde = RayleighBenard2D(rayleigh=1e5)
        _, values = model.forward_with_derivatives(tiny_lowres, tiny_coords, pde)
        needed = {s.symbol for s in pde.required_derivatives()} | set(pde.fields)
        assert needed <= set(values)
        for v in values.values():
            assert v.shape == (2, 12)

    def test_first_derivative_matches_finite_difference(self, model, tiny_lowres):
        """Autodiff derivative of the full model w.r.t. query coordinates == FD."""
        pde = divergence_free_system()
        coords_np = np.random.default_rng(0).random((1, 4, 3)) * 0.6 + 0.2
        lowres = Tensor(tiny_lowres.data[:1])
        _, values = model.forward_with_derivatives(lowres, Tensor(coords_np, requires_grad=True), pde)

        eps = 1e-5
        u_idx = model.config.field_names.index("u")
        x_axis = model.config.coord_names.index("x")
        plus = coords_np.copy(); plus[..., x_axis] += eps
        minus = coords_np.copy(); minus[..., x_axis] -= eps
        fd = (model(lowres, Tensor(plus)).data[..., u_idx]
              - model(lowres, Tensor(minus)).data[..., u_idx]) / (2 * eps)
        assert np.allclose(values["u_x"].data, fd, rtol=1e-4, atol=1e-6)

    def test_second_derivative_matches_finite_difference(self, model, tiny_lowres):
        pde = RayleighBenard2D(rayleigh=1e4, include_momentum=False)
        coords_np = np.random.default_rng(1).random((1, 3, 3)) * 0.5 + 0.25
        lowres = Tensor(tiny_lowres.data[:1])
        _, values = model.forward_with_derivatives(lowres, Tensor(coords_np, requires_grad=True), pde)

        eps = 3e-4
        t_idx = model.config.field_names.index("T")
        x_axis = model.config.coord_names.index("x")
        base = model(lowres, Tensor(coords_np)).data[..., t_idx]
        plus = coords_np.copy(); plus[..., x_axis] += eps
        minus = coords_np.copy(); minus[..., x_axis] -= eps
        fd2 = (model(lowres, Tensor(plus)).data[..., t_idx]
               - 2 * base + model(lowres, Tensor(minus)).data[..., t_idx]) / eps**2
        assert np.allclose(values["T_xx"].data, fd2, rtol=2e-3, atol=1e-4)

    def test_coordinate_scaling(self, model, tiny_lowres, tiny_coords):
        """Derivatives in physical units scale inversely with the crop extent."""
        pde = divergence_free_system()
        _, v1 = model.forward_with_derivatives(tiny_lowres, tiny_coords, pde, coord_scales=(1.0, 1.0, 1.0))
        _, v2 = model.forward_with_derivatives(tiny_lowres, tiny_coords, pde, coord_scales=(1.0, 1.0, 4.0))
        assert np.allclose(v2["u_x"].data, v1["u_x"].data / 4.0)
        assert np.allclose(v2["w_z"].data, v1["w_z"].data)

    def test_invalid_scales(self, model, tiny_lowres, tiny_coords):
        pde = divergence_free_system()
        with pytest.raises(ValueError):
            model.forward_with_derivatives(tiny_lowres, tiny_coords, pde, coord_scales=(1.0, 0.0, 1.0))
        with pytest.raises(ValueError):
            model.forward_with_derivatives(tiny_lowres, tiny_coords, pde, coord_scales=(1.0, 1.0))

    def test_equation_loss_backprop_reaches_unet(self, model, tiny_lowres, tiny_coords):
        """The PDE residual loss must provide gradients to the encoder parameters."""
        pde = divergence_free_system()
        _, values = model.forward_with_derivatives(tiny_lowres, tiny_coords, pde)
        residual = pde.residuals(values)["continuity"]
        loss = ops.mean(ops.abs(residual))
        loss.backward()
        unet_grads = [p.grad for p in model.unet.parameters() if p.grad is not None]
        assert len(unet_grads) > 0
        assert any(np.any(g != 0) for g in unet_grads)
