"""Data pipeline: downsampling, interpolation, normalisation, datasets, loaders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Batch,
    ChannelNormalizer,
    DataLoader,
    SuperResolutionDataset,
    downsample_fields,
    downsample_result,
    interpolate_grid,
    upsample_trilinear,
)
from repro.simulation import synthetic_convection


class TestDownsample:
    def test_subsample_shape(self, rng):
        fields = rng.standard_normal((8, 4, 16, 32))
        out = downsample_fields(fields, (2, 4, 8))
        assert out.shape == (4, 4, 4, 4)

    def test_subsample_values_are_strided(self, rng):
        fields = rng.standard_normal((4, 2, 4, 4))
        out = downsample_fields(fields, (2, 2, 2))
        assert np.allclose(out, fields[::2, :, ::2, ::2])

    def test_mean_preserves_average(self, rng):
        fields = rng.standard_normal((4, 2, 8, 8))
        out = downsample_fields(fields, (2, 2, 2), method="mean")
        assert out.mean() == pytest.approx(fields.mean())

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            downsample_fields(rng.standard_normal((5, 2, 4, 4)), (2, 2, 2))

    def test_invalid_factor(self, rng):
        with pytest.raises(ValueError):
            downsample_fields(rng.standard_normal((4, 2, 4, 4)), (0, 2, 2))

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            downsample_fields(rng.standard_normal((4, 2, 4, 4)), (2, 2, 2), method="lanczos")

    def test_downsample_result_metadata(self, synthetic_result):
        lr = downsample_result(synthetic_result, (2, 2, 4))
        assert lr.shape == (8, 8, 16)
        assert lr.metadata["downsample_factors"] == (2, 2, 4)
        assert len(lr.times) == 8

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from([1, 2, 4]), st.sampled_from([1, 2, 4]), st.sampled_from([1, 2, 4]))
    def test_shape_property(self, ft, fz, fx):
        fields = np.zeros((8, 4, 8, 8))
        out = downsample_fields(fields, (ft, fz, fx))
        assert out.shape == (8 // ft, 4, 8 // fz, 8 // fx)


class TestInterpolation:
    def test_exact_at_grid_points(self, rng):
        field = rng.standard_normal((3, 4, 5, 6))
        # query exactly at grid node (1, 2, 3)
        coords = np.array([[1 / 3, 2 / 4, 3 / 5]])
        out = interpolate_grid(field, coords)
        assert np.allclose(out[0], field[:, 1, 2, 3])

    def test_linear_function_reproduced(self, rng):
        nt, nz, nx = 4, 5, 6
        tt, zz, xx = np.meshgrid(np.linspace(0, 1, nt), np.linspace(0, 1, nz),
                                 np.linspace(0, 1, nx), indexing="ij")
        field = (1.5 * tt - 2.0 * zz + 0.25 * xx)[None]
        coords = rng.random((40, 3))
        out = interpolate_grid(field, coords)[:, 0]
        expected = 1.5 * coords[:, 0] - 2.0 * coords[:, 1] + 0.25 * coords[:, 2]
        assert np.allclose(out, expected, atol=1e-12)

    def test_out_of_range_clamped(self, rng):
        field = rng.standard_normal((2, 3, 3, 3))
        out = interpolate_grid(field, np.array([[-0.5, 2.0, 0.5]]))
        assert np.isfinite(out).all()

    def test_invalid_shapes(self, rng):
        with pytest.raises(ValueError):
            interpolate_grid(rng.standard_normal((3, 3, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            interpolate_grid(rng.standard_normal((1, 3, 3, 3)), np.zeros((2, 2)))

    def test_upsample_shape_and_node_agreement(self, rng):
        field = rng.standard_normal((2, 3, 3, 3))
        up = upsample_trilinear(field, (5, 5, 5))
        assert up.shape == (2, 5, 5, 5)
        assert np.allclose(up[:, ::2, ::2, ::2], field)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_constant_field_property(self, value):
        field = np.full((1, 3, 4, 5), value)
        coords = np.random.default_rng(0).random((10, 3))
        assert np.allclose(interpolate_grid(field, coords), value)


class TestNormalizer:
    def test_transform_statistics(self, rng):
        data = rng.standard_normal((10, 4, 8, 8)) * 3.0 + 5.0
        norm = ChannelNormalizer().fit(data)
        out = norm.transform(data)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-6)

    def test_roundtrip(self, rng):
        data = rng.standard_normal((6, 4, 4, 4))
        norm = ChannelNormalizer().fit(data)
        assert np.allclose(norm.inverse_transform(norm.transform(data)), data)

    def test_channel_axis_argument(self, rng):
        data = rng.standard_normal((5, 7, 4))  # channels last
        norm = ChannelNormalizer().fit(data, channel_axis=-1)
        out = norm.transform(data, channel_axis=-1)
        assert np.allclose(out.mean(axis=(0, 1)), 0.0, atol=1e-10)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ChannelNormalizer().transform(np.zeros((2, 4, 2, 2)))

    def test_state_dict_roundtrip(self, rng):
        data = rng.standard_normal((4, 4, 4, 4))
        norm = ChannelNormalizer().fit(data)
        norm2 = ChannelNormalizer.from_state_dict(norm.state_dict())
        assert np.allclose(norm2.transform(data), norm.transform(data))


class TestSuperResolutionDataset:
    def test_shapes(self, tiny_dataset):
        assert tiny_dataset.lr_shape == (8, 8, 16)
        assert tiny_dataset.hr_shape == (16, 16, 64)
        assert tiny_dataset.hr_crop_shape() == (7, 7, 29)

    def test_sample_batch_shapes(self, tiny_dataset):
        batch = tiny_dataset.sample_batch([0, 1, 2], epoch=0)
        assert isinstance(batch, Batch)
        assert batch.lowres.shape == (3, 4, 4, 4, 8)
        assert batch.coords.shape == (3, 32, 3)
        assert batch.targets.shape == (3, 32, 4)
        assert batch.coord_scales.shape == (3,)
        assert len(batch) == 3

    def test_sampling_deterministic(self, tiny_dataset):
        a = tiny_dataset.sample(3, epoch=1)
        b = tiny_dataset.sample(3, epoch=1)
        assert np.allclose(a.lowres, b.lowres)
        assert np.allclose(a.coords, b.coords)

    def test_sampling_varies_with_epoch_and_index(self, tiny_dataset):
        a = tiny_dataset.sample(0, epoch=0)
        b = tiny_dataset.sample(0, epoch=1)
        c = tiny_dataset.sample(1, epoch=0)
        assert not np.allclose(a.coords, b.coords)
        assert not np.allclose(a.coords, c.coords)

    def test_coords_in_unit_cube(self, tiny_dataset):
        batch = tiny_dataset.sample(0)
        assert batch.coords.min() >= 0.0 and batch.coords.max() <= 1.0

    def test_targets_match_manual_interpolation(self, synthetic_result):
        ds = SuperResolutionDataset(synthetic_result, lr_factors=(2, 2, 4),
                                    crop_shape_lr=(4, 4, 8), n_points=16, normalize=False, seed=1)
        batch = ds.sample(0)
        # Targets must lie within the range of the HR data (they are interpolants).
        assert batch.targets.min() >= synthetic_result.fields.min() - 1e-9
        assert batch.targets.max() <= synthetic_result.fields.max() + 1e-9

    def test_normalization_applied(self, synthetic_result):
        ds = SuperResolutionDataset(synthetic_result, lr_factors=(2, 2, 4),
                                    crop_shape_lr=(4, 4, 8), normalize=True)
        concat = np.concatenate([f.reshape(f.shape[0], 4, -1) for f in ds.hr_fields], axis=0)
        assert np.allclose(concat.mean(axis=(0, 2)), 0.0, atol=1e-8)

    def test_denormalize_roundtrip(self, tiny_dataset, synthetic_result):
        lr, hr, _ = tiny_dataset.evaluation_pair(0)
        restored = tiny_dataset.denormalize(hr, channel_axis=0)
        trimmed = synthetic_result.fields[:15, :, :15, :61]
        assert np.allclose(np.moveaxis(restored, 0, 1), trimmed, atol=1e-8)

    def test_evaluation_pair_shapes(self, tiny_dataset):
        lr, hr, extent = tiny_dataset.evaluation_pair(0)
        assert lr.shape == (4, 8, 8, 16)
        assert hr.shape == (4, 15, 15, 61)
        assert extent.shape == (3,)
        assert np.all(extent > 0)

    def test_crop_too_large_raises(self, synthetic_result):
        with pytest.raises(ValueError):
            SuperResolutionDataset(synthetic_result, lr_factors=(2, 2, 4), crop_shape_lr=(16, 4, 8))

    def test_mismatched_results_raise(self, synthetic_result):
        other = synthetic_convection(nt=8, nz=16, nx=64, seed=1)
        with pytest.raises(ValueError):
            SuperResolutionDataset([synthetic_result, other], lr_factors=(2, 2, 4), crop_shape_lr=(2, 4, 8))

    def test_multiple_datasets_sampled(self, synthetic_result):
        other = synthetic_convection(nt=16, nz=16, nx=64, seed=11)
        ds = SuperResolutionDataset([synthetic_result, other], lr_factors=(2, 2, 4),
                                    crop_shape_lr=(4, 4, 8), n_points=8, samples_per_epoch=64, seed=0)
        assert ds.n_datasets == 2


class TestDataLoader:
    def test_iteration_count(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=3)
        batches = list(loader)
        assert len(batches) == len(loader) == 3  # 8 samples / 3 -> 3 batches
        assert batches[-1].lowres.shape[0] == 2

    def test_drop_last(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=3, drop_last=True)
        assert len(list(loader)) == 2

    def test_sampler_restricts_indices(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=2, sampler=[0, 1])
        batches = list(loader)
        assert len(batches) == 1

    def test_set_epoch_changes_batches(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=2)
        first = next(iter(loader))
        loader.set_epoch(5)
        second = next(iter(loader))
        assert not np.allclose(first.coords, second.coords)

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_dataset, batch_size=0)

    def test_live_distributed_sampler(self, tiny_dataset):
        """A DistributedSampler is kept live: set_epoch propagates and the
        loader re-queries the shard for each epoch's global permutation."""
        from repro.distributed import DistributedSampler

        sampler = DistributedSampler(len(tiny_dataset), world_size=2, rank=0,
                                     shuffle=True, seed=3)
        loader = DataLoader(tiny_dataset, batch_size=2, sampler=sampler)
        assert len(loader) == 2  # 8 samples / 2 ranks / batch 2
        assert len(list(loader)) == 2

        epoch0_shard = sampler.indices()
        loader.set_epoch(1)
        assert sampler.epoch == 1  # propagated to the live sampler
        assert sampler.indices() != epoch0_shard

        # Per-rank loaders over the same epoch tile the global permutation.
        other = DataLoader(tiny_dataset, batch_size=2,
                           sampler=DistributedSampler(len(tiny_dataset), 2, 1,
                                                      shuffle=True, seed=3))
        other.set_epoch(1)
        combined = sorted(loader._indices() + other._indices())
        assert combined == list(range(len(tiny_dataset)))
