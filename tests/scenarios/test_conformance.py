"""The cross-scenario conformance matrix.

One parametrized suite that every registered scenario must pass (see
``conftest.py``): entry contract, residual-vs-analytic agreement, gradcheck
of the equation loss through the second-order derivative stack, precision
policy behaviour, dataset shape/normalization round-trips, a short train-step
smoke in eager and compiled mode, and tiled-vs-direct inference equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff.gradcheck import gradcheck
from repro.backend import default_dtype, precision
from repro.core import equation_loss
from repro.inference import InferenceEngine
from repro.pde import PDESystem
from repro.simulation import SimulationResult
from repro.training import Trainer, TrainerConfig

from .conftest import DATASET_KWARGS, GEN_KWARGS

pytestmark = pytest.mark.scenario

#: Query points for derivative checks, chosen away from the piecewise-linear
#: cell boundaries of the trilinear latent interpolation (the prediction is
#: not differentiable in the coords *at* a boundary).
PROBE_COORDS = np.array([[0.213, 0.172, 0.411],
                         [0.547, 0.523, 0.137],
                         [0.843, 0.371, 0.766],
                         [0.313, 0.619, 0.291]])


def _as_batched(result: SimulationResult) -> np.ndarray:
    """(nt, C, nz, nx) simulation fields -> (1, C, nt, nz, nx) model input."""
    return np.ascontiguousarray(result.fields.transpose(1, 0, 2, 3))[None]


class TestEntryContract:
    def test_pde_resolves(self, scenario):
        system = scenario.make_pde_system()
        assert isinstance(system, PDESystem)
        assert system.constraints, "a scenario's PDE system must constrain something"
        assert system.fields == scenario.fields
        assert system.coords == scenario.coords

    def test_generator_matches_fields(self, scenario, hr_result):
        assert isinstance(hr_result, SimulationResult)
        assert hr_result.channels == scenario.fields
        assert hr_result.fields.shape == (GEN_KWARGS["nt"], len(scenario.fields),
                                          GEN_KWARGS["nz"], GEN_KWARGS["nx"])
        assert np.all(np.isfinite(hr_result.fields))

    def test_constraint_fields_are_scenario_fields(self, scenario):
        system = scenario.make_pde_system()
        for constraint in system.constraints:
            for symbol in constraint.symbols():
                field = symbol.rpartition("_")[0] or symbol
                assert field in scenario.fields, (constraint.name, symbol)

    def test_metrics_and_description(self, scenario):
        fns = scenario.metric_fns()
        assert set(fns) == set(scenario.metrics)
        assert scenario.description
        assert scenario.analytic_cases(), "every scenario needs analytic coverage"

    def test_model_roundtrip(self, scenario):
        model = scenario.build_model("tiny")
        assert model.config.field_names == scenario.fields
        assert model.config.in_channels == model.config.out_channels == len(scenario.fields)


class TestResidualVsAnalytic:
    def test_residuals_match_hand_derived(self, scenario):
        """The registered system, evaluated on hand-written closed forms,
        must reproduce hand-derived residuals (0 for exact solutions)."""
        for case in scenario.analytic_cases():
            system = scenario.make_pde_system(**dict(case.pde_kwargs))
            values = {k: Tensor(np.asarray(v)) for k, v in case.values.items()}
            for constraint in system.constraints:
                if constraint.name not in case.expected:
                    continue
                missing = constraint.symbols() - set(case.values)
                assert not missing, (
                    f"{scenario.name}/{case.name}: constraint '{constraint.name}' "
                    f"needs symbols {sorted(missing)} the case does not provide")
                residual = constraint.residual(values).data
                expected = np.asarray(case.expected[constraint.name], dtype=np.float64)
                scale = max(1.0, max(np.max(np.abs(case.values[s])) for s in constraint.symbols()))
                np.testing.assert_allclose(
                    residual, np.broadcast_to(expected, residual.shape),
                    atol=1e-10 * scale, rtol=0,
                    err_msg=f"{scenario.name}/{case.name}/{constraint.name}")

    def test_expected_constraints_exist(self, scenario):
        for case in scenario.analytic_cases():
            system = scenario.make_pde_system(**dict(case.pde_kwargs))
            names = {c.name for c in system.constraints}
            unknown = set(case.expected) - names
            assert not unknown, f"{scenario.name}/{case.name}: {sorted(unknown)}"


class TestEquationLossGradcheck:
    def test_equation_loss_gradient_wrt_coords(self, scenario, hr_result):
        """Finite-difference check of d(equation loss)/d(coords) — this
        differentiates *through* the second-order residual stack, so it
        exercises the full ``create_graph=True`` path the trainer uses."""
        with precision("float64"):
            model = scenario.build_model("tiny")
            system = scenario.make_pde_system()
            lowres = Tensor(_as_batched(hr_result)[:, :, :2, :4, :4].astype(np.float64))
            coords = Tensor(PROBE_COORDS[None].copy(), requires_grad=True)

            def loss_fn(c):
                _, values = model.forward_with_derivatives(lowres, c, system)
                return equation_loss(system.residuals(values), norm="l2")

            assert gradcheck(loss_fn, [coords], eps=1e-6, atol=1e-6, rtol=1e-5)


class TestPrecisionPolicy:
    @pytest.mark.parametrize("policy", ["float64", "float32"])
    def test_model_and_residuals_follow_policy(self, scenario, policy):
        dtype = np.dtype(policy)
        with precision(policy):
            model = scenario.build_model("tiny")
            assert model.dtype == dtype
            rng = np.random.default_rng(11)
            lowres = Tensor(rng.standard_normal(
                (1, len(scenario.fields), 2, 4, 4)).astype(dtype))
            coords = Tensor(PROBE_COORDS[None].astype(dtype), requires_grad=True)
            system = scenario.make_pde_system()
            pred, values = model.forward_with_derivatives(lowres, coords, system)
            assert pred.data.dtype == dtype
            for name, residual in system.residuals(values).items():
                assert residual.data.dtype == dtype, name

    def test_default_policy_applies(self, scenario):
        """Whatever REPRO_DEFAULT_DTYPE selected is what scenarios compute in."""
        model = scenario.build_model("tiny")
        assert model.dtype == default_dtype()


class TestDatasetConformance:
    def test_batch_shapes_and_ranges(self, scenario, small_dataset):
        n_channels = len(scenario.fields)
        batch = small_dataset.sample_batch([0, 1], epoch=0)
        ct, cz, cx = DATASET_KWARGS["crop_shape_lr"]
        assert batch.lowres.shape == (2, n_channels, ct, cz, cx)
        assert batch.coords.shape == (2, DATASET_KWARGS["n_points"], 3)
        assert batch.targets.shape == (2, DATASET_KWARGS["n_points"], n_channels)
        assert batch.coords.min() >= 0.0 and batch.coords.max() <= 1.0
        assert batch.coord_scales.shape == (3,)

    def test_channel_names_follow_result(self, scenario, small_dataset):
        assert tuple(small_dataset.channel_names) == scenario.fields

    def test_normalization_round_trip(self, scenario, hr_result, small_dataset):
        assert small_dataset.normalizer is not None
        normalized = small_dataset.hr_fields[0]
        restored = small_dataset.normalizer.inverse_transform(normalized, channel_axis=1)
        np.testing.assert_allclose(restored, hr_result.fields, rtol=1e-10, atol=1e-10)
        # per-channel statistics of the normalized data are ~(0, 1)
        axes = (0, 2, 3)
        np.testing.assert_allclose(normalized.mean(axis=axes), 0.0, atol=1e-8)
        np.testing.assert_allclose(normalized.std(axis=axes), 1.0, atol=1e-6)

    def test_scenario_normalizer_matches_dataset(self, scenario, hr_result, small_dataset):
        norm = scenario.normalizer(hr_result)
        np.testing.assert_allclose(norm.mean_, small_dataset.normalizer.mean_)
        np.testing.assert_allclose(norm.std_, small_dataset.normalizer.std_)

    def test_save_load_preserves_channels(self, scenario, hr_result, tmp_path):
        path = tmp_path / "block.npz"
        hr_result.save(path)
        loaded = SimulationResult.load(path)
        assert loaded.channels == scenario.fields
        np.testing.assert_array_equal(loaded.fields, hr_result.fields)


class TestTrainStepSmoke:
    def _train(self, scenario, small_dataset, compile_flag):
        config = TrainerConfig(epochs=1, batch_size=2, steps_per_epoch=2,
                               gamma=0.0125, learning_rate=1e-3, seed=0,
                               scenario=scenario.name, compile=compile_flag)
        trainer = Trainer(scenario.build_model("tiny"), small_dataset, config=config)
        history = trainer.train()
        return trainer, history

    def test_eager_train_step(self, scenario, small_dataset):
        trainer, history = self._train(scenario, small_dataset, compile_flag=False)
        assert trainer.pde_system is not None  # resolved from the scenario name
        assert len(history) == 1
        record = history[0]
        assert np.isfinite(record["loss"])
        assert np.isfinite(record["equation_loss"])
        assert record["equation_loss"] > 0.0  # residuals of an untrained model

    def test_compile_matches_eager(self, scenario, small_dataset):
        """``TrainerConfig.compile`` runs the full physics-constrained step
        — forward, PDE residuals, loss and parameter VJP — as *replayed
        compiled plans* (not an eager fallback), and the training histories,
        final parameters and module buffers still agree bit-for-bit with
        eager training (seeded identical init + data order)."""
        eager_tr, eager = self._train(scenario, small_dataset, compile_flag=False)
        comp_tr, compiled = self._train(scenario, small_dataset, compile_flag=True)
        assert len(eager) == len(compiled)
        for key in ("loss", "prediction_loss", "equation_loss"):
            assert np.array_equal(eager.series(key), compiled.series(key)), key
        for pe, pc in zip(eager_tr.model.parameters(), comp_tr.model.parameters()):
            assert np.array_equal(pe.data, pc.data)
        for me, mc in zip(eager_tr.model.modules(), comp_tr.model.modules()):
            for be, bc in zip(me._buffers.values(), mc._buffers.values()):
                assert np.array_equal(be, bc)
        stats = comp_tr._compiled_step.stats()
        # Real compilation: the first micro-batch traces, the rest replay.
        assert stats["n_plans"] >= 1
        assert stats["plan_hits"] >= 1
        assert stats["fallbacks"] == {}

    def test_compiled_checkpoint_resume_bitwise(self, scenario, small_dataset, tmp_path):
        """A compiled run checkpointed mid-training and resumed (still
        compiled — the resume re-traces against the restored parameter
        arrays) continues bit-identically to an uninterrupted eager run."""
        _, eager = self._train(scenario, small_dataset, compile_flag=False)

        config = TrainerConfig(epochs=1, batch_size=2, steps_per_epoch=2,
                               gamma=0.0125, learning_rate=1e-3, seed=0,
                               scenario=scenario.name, compile=True)
        first = Trainer(scenario.build_model("tiny"), small_dataset, config=config)
        first.train()
        ckpt = tmp_path / "mid.npz"
        first.save(ckpt)

        resumed = Trainer(scenario.build_model("tiny"), small_dataset, config=config)
        resumed.resume(ckpt)
        history = resumed.train(epochs=1)

        reference = self._train_epochs(scenario, small_dataset, epochs=2)
        assert history.series("loss")[-1] == reference.series("loss")[-1]
        assert np.array_equal(history.series("loss"), reference.series("loss"))
        assert resumed._compiled_step.stats()["fallbacks"] == {}

    def _train_epochs(self, scenario, small_dataset, epochs):
        config = TrainerConfig(epochs=epochs, batch_size=2, steps_per_epoch=2,
                               gamma=0.0125, learning_rate=1e-3, seed=0,
                               scenario=scenario.name, compile=False)
        trainer = Trainer(scenario.build_model("tiny"), small_dataset, config=config)
        return trainer.train()


class TestTiledInference:
    def test_tiled_matches_direct(self, scenario):
        model = scenario.build_model("tiny").eval()
        # wide x so the x-axis genuinely splits into two overlapping tiles:
        # the tiny model's receptive halo of 5 plus the blend ramp needs 16
        # vertices per tiled axis, and t/z stay single tiles.
        block = scenario.generate(nt=8, nz=8, nx=32, seed=11)
        lowres = _as_batched(block).astype(model.dtype)
        direct = InferenceEngine.for_scenario(scenario.name, model=model)
        tiled = InferenceEngine.for_scenario(scenario.name, model=model,
                                             tile_shape=(8, 8, 16))
        out_shape = (4, 8, 16)
        out_direct = direct.predict_grid(lowres, out_shape)
        out_tiled = tiled.predict_grid(lowres, out_shape)
        assert out_direct.shape == (1, len(scenario.fields), *out_shape)
        tol = 1e-12 if default_dtype() == np.float64 else 3e-4
        np.testing.assert_allclose(out_tiled, out_direct, rtol=0, atol=tol)
