"""Fixtures of the cross-scenario conformance matrix.

Every test in this directory is parametrized over *all* registered scenarios
(``available_scenarios()`` at collection time), so registering a new scenario
automatically runs it through the whole matrix.  Generated data is cached per
scenario for the session; crops/datasets are built per test on top of the
cached blocks.
"""

from __future__ import annotations

import pytest

from repro.scenarios import available_scenarios, get_scenario

#: Small generation grid shared by all scenarios (fast, but large enough for
#: the (2, 2, 2) downsampling factors and (2, 4, 4) low-res crops below).
GEN_KWARGS = dict(nt=8, nz=8, nx=16, seed=7)

#: Dataset hyper-parameters sized to :data:`GEN_KWARGS`, overriding each
#: scenario's (bigger) defaults so the matrix stays cheap.
DATASET_KWARGS = dict(lr_factors=(2, 2, 2), crop_shape_lr=(2, 4, 4),
                      n_points=16, samples_per_epoch=8, seed=0)


@pytest.fixture(params=available_scenarios())
def scenario(request):
    """Each registered scenario in turn (the matrix axis)."""
    return get_scenario(request.param)


@pytest.fixture(scope="session")
def _result_cache():
    return {}


@pytest.fixture
def hr_result(scenario, _result_cache):
    """One cached high-resolution block per scenario (treat as read-only)."""
    if scenario.name not in _result_cache:
        _result_cache[scenario.name] = scenario.generate(**GEN_KWARGS)
    return _result_cache[scenario.name]


@pytest.fixture
def small_dataset(scenario, hr_result):
    return scenario.make_dataset(results=hr_result, **DATASET_KWARGS)
