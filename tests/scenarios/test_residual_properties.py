"""Property-based checks of every scenario's PDE residuals.

Two complementary properties per scenario:

* **Exactness is not vacuous** — analytic cases that expect a zero residual
  must become *nonzero* once the solution is perturbed, proving the zero is
  a genuine cancellation and not a constraint that ignores its inputs.
* **Every symbol matters** — perturbing any single symbol of a constraint
  changes its residual on random data, so no registered term is a phantom
  (e.g. a zero-coefficient leftover) and no symbol is silently dropped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor

pytestmark = pytest.mark.scenario


def _random_values(symbols, rng, shape=(5, 7)):
    return {s: rng.standard_normal(shape) for s in sorted(symbols)}


class TestExactSolutions:
    def test_zero_expectations_are_exact(self, scenario):
        for case in scenario.analytic_cases():
            system = scenario.make_pde_system(**dict(case.pde_kwargs))
            for constraint in system.constraints:
                expected = case.expected.get(constraint.name)
                if not (np.isscalar(expected) and expected == 0.0):
                    continue
                residual = constraint.residual(
                    {k: Tensor(np.asarray(v)) for k, v in case.values.items()}).data
                scale = max(1.0, max(np.max(np.abs(case.values[s]))
                                     for s in constraint.symbols()))
                assert np.max(np.abs(residual)) <= 1e-10 * scale, (
                    f"{scenario.name}/{case.name}/{constraint.name}")

    def test_perturbed_solution_is_not_exact(self, scenario):
        """Breaking the closed form must break the zero residual.

        Every symbol is bumped by a (seeded) random offset at once — a
        per-symbol bump would be absorbed by nonlinear terms whose other
        factor is zero at the solution (e.g. ``u·u_x`` at a rest state).
        """
        rng = np.random.default_rng(99)
        for case in scenario.analytic_cases():
            system = scenario.make_pde_system(**dict(case.pde_kwargs))
            for constraint in system.constraints:
                expected = case.expected.get(constraint.name)
                if not (np.isscalar(expected) and expected == 0.0):
                    continue
                perturbed = {
                    k: Tensor(np.asarray(v) + rng.uniform(0.1, 0.5))
                    for k, v in case.values.items()}
                residual = constraint.residual(perturbed).data
                assert np.max(np.abs(residual)) > 1e-6, (
                    f"{scenario.name}/{case.name}/{constraint.name}: the zero "
                    f"residual is vacuous — it survives a perturbed solution")


class TestEverySymbolMatters:
    def test_each_symbol_changes_residual(self, scenario):
        rng = np.random.default_rng(7)
        system = scenario.make_pde_system()
        for constraint in system.constraints:
            base_values = _random_values(constraint.symbols(), rng)
            base = constraint.residual(
                {k: Tensor(v) for k, v in base_values.items()}).data
            for symbol in sorted(constraint.symbols()):
                bumped = dict(base_values)
                bumped[symbol] = bumped[symbol] + 0.37
                changed = constraint.residual(
                    {k: Tensor(v) for k, v in bumped.items()}).data
                assert np.max(np.abs(changed - base)) > 1e-8, (
                    f"{scenario.name}/{constraint.name}: symbol '{symbol}' has no "
                    f"effect — phantom or zero-coefficient term?")

    def test_residuals_are_finite_on_generated_data(self, scenario, hr_result):
        """The generator's own output feeds the residual stack cleanly (the
        values a trained model would be asked to reproduce are in-range)."""
        system = scenario.make_pde_system()
        nt, n_channels, nz, nx = hr_result.fields.shape
        values = {}
        rng = np.random.default_rng(3)
        for spec in system.required_derivatives():
            values.setdefault(spec.symbol, rng.standard_normal((nt, nz, nx)))
        for index, field in enumerate(scenario.fields):
            values[field] = hr_result.fields[:, index]
        residuals = system.residuals_from_arrays(values)
        for name, residual in residuals.items():
            assert np.all(np.isfinite(residual)), f"{scenario.name}/{name}"
