"""Setuptools shim.

``pip install -e .`` requires the ``wheel`` package for PEP 660 editable
installs; in fully offline environments without ``wheel`` you can instead run
``python setup.py develop --no-deps`` or simply add ``src/`` to a ``.pth``
file in site-packages (both are equivalent for this pure-Python package).
"""

from setuptools import setup

setup()
