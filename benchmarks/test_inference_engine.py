"""Throughput and peak-memory benchmark of the tiled inference engine.

Compares two ways of super-resolving a low-resolution domain whose volume is
several times larger than one tile:

* **direct** — the seed path (one full-domain U-Net encode, then chunked
  decoding), whose peak memory grows with the domain volume;
* **tiled**  — :class:`repro.inference.InferenceEngine` with overlapping
  tiles, a bounded LRU latent cache and fused batched decoding.

Both paths produce outputs equal to round-off (asserted here), while the
tiled path must cut peak memory at least in half (the acceptance criterion;
in practice the ratio grows with the domain-to-tile volume ratio).
Throughput (points/sec) of both paths is recorded in the benchmark extra
info for trend tracking.
"""

import numpy as np
import pytest

from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.inference import InferenceEngine

DOMAIN_SHAPE = (8, 64, 160)      # low-res vertices (t, z, x)
TILE_SHAPE = (8, 32, 48)         # ≥ 4x smaller than the domain by volume
OUTPUT_SHAPE = (16, 128, 320)    # 2x super-resolution along every axis


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()


@pytest.fixture(scope="module")
def lowres():
    rng = np.random.default_rng(0)
    return rng.standard_normal((1, 4, *DOMAIN_SHAPE))


@pytest.mark.benchmark(group="inference-engine")
def test_tiled_vs_direct_memory_and_throughput(benchmark, model, lowres, run_traced):
    """Tiled inference halves peak memory on a domain ≥ 4x one tile."""
    domain_volume = int(np.prod(DOMAIN_SHAPE))
    tile_volume = int(np.prod(TILE_SHAPE))
    assert domain_volume >= 4 * tile_volume

    direct_engine = InferenceEngine(model)
    direct, direct_peak = run_traced(
        lambda: direct_engine.predict_grid(lowres, OUTPUT_SHAPE))

    tiled_engine = InferenceEngine(model, tile_shape=TILE_SHAPE, cache_tiles=4)

    def tiled_run():
        return tiled_engine.predict_grid(lowres, OUTPUT_SHAPE)

    tiled, tiled_peak = run_traced(tiled_run)
    benchmark.pedantic(tiled_run, rounds=1, iterations=1)

    n_points = int(np.prod(OUTPUT_SHAPE))
    tiled_pps = n_points / benchmark.stats.stats.mean

    # Correctness: tiled output equals the direct decode to round-off.
    assert np.max(np.abs(tiled - direct)) < 1e-8
    # Within each pass every tile is encoded exactly once; across the two
    # passes the 4-tile LRU (deliberately smaller than the tile count, to
    # bound memory) has evicted the early tiles, so each pass re-encodes.
    layout_tiles = tiled_engine.open(lowres).layout.n_tiles
    assert layout_tiles > 4
    assert tiled_engine.cache_stats.misses == 2 * layout_tiles  # two tiled runs

    benchmark.extra_info.update({
        "points": n_points,
        "tiles": layout_tiles,
        "direct_peak_mb": round(direct_peak / 1e6, 2),
        "tiled_peak_mb": round(tiled_peak / 1e6, 2),
        "memory_reduction": round(direct_peak / max(tiled_peak, 1), 2),
        "tiled_points_per_sec": round(tiled_pps),
    })

    # Acceptance criterion: ≥ 2x peak-memory reduction.
    assert tiled_peak * 2 <= direct_peak, (
        f"expected ≥2x peak-memory reduction; direct={direct_peak / 1e6:.1f} MB "
        f"tiled={tiled_peak / 1e6:.1f} MB"
    )


@pytest.mark.benchmark(group="inference-engine")
def test_direct_reference_throughput(benchmark, model, lowres):
    """Reference timing of the untiled path on the same workload."""
    engine = InferenceEngine(model)
    benchmark.pedantic(lambda: engine.predict_grid(lowres, OUTPUT_SHAPE),
                       rounds=1, iterations=1)
    n_points = int(np.prod(OUTPUT_SHAPE))
    benchmark.extra_info["direct_points_per_sec"] = round(
        n_points / benchmark.stats.stats.mean)


@pytest.mark.benchmark(group="inference-engine")
def test_latent_cache_reuse_speeds_up_requery(benchmark, model, lowres):
    """Re-querying an open field hits the latent cache instead of re-encoding."""
    engine = InferenceEngine(model, tile_shape=TILE_SHAPE, cache_tiles=None)
    field = engine.open(lowres)
    coords = np.random.default_rng(1).random((20_000, 3))
    field.query(coords)  # warm the cache
    misses_before = engine.cache_stats.misses
    benchmark.pedantic(lambda: field.query(coords), rounds=1, iterations=1)
    assert engine.cache_stats.misses == misses_before
    assert engine.cache_stats.hits > 0
