"""Shared fixtures for the benchmark harness.

Every table/figure benchmark runs its experiment at a CPU-friendly scale (the
``bench_scale`` fixture) through ``benchmark.pedantic(rounds=1)`` — the point
of these benchmarks is to *regenerate* the paper's tables and figures and
report how long that takes, not to micro-profile a hot loop.  The
micro-benchmarks in ``test_microbenchmarks.py`` use normal multi-round timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import SCALES


@pytest.fixture(scope="session")
def bench_scale():
    """Scale used by the table/figure regeneration benchmarks."""
    return SCALES["tiny"].with_overrides(
        hr_shape=(16, 16, 64),
        lr_factors=(2, 2, 4),
        crop_shape_lr=(4, 4, 8),
        n_points=32,
        samples_per_epoch=8,
        epochs=2,
        batch_size=2,
    )


@pytest.fixture(scope="session")
def bench_scale_solver(bench_scale):
    """Same scale but generating data with the actual Rayleigh–Bénard solver."""
    return bench_scale.with_overrides(backend="solver", t_final=4.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
