"""Shared fixtures for the benchmark harness.

Every table/figure benchmark runs its experiment at a CPU-friendly scale (the
``bench_scale`` fixture) through ``benchmark.pedantic(rounds=1)`` — the point
of these benchmarks is to *regenerate* the paper's tables and figures and
report how long that takes, not to micro-profile a hot loop.  The
micro-benchmarks in ``test_microbenchmarks.py`` use normal multi-round timing.

Benchmarks that want their numbers tracked *across PRs* record entries
through the ``bench_artifact`` fixture; at session end the collected
entries are written to per-PR artifact files at the repository root
(``BENCH_pr3.json`` for the precision/serving gates, ``BENCH_pr4.json``
for the training gates, ``BENCH_pr5.json`` for the compiled-decode
gates, ``BENCH_pr7.json`` for the observability overhead gate,
``BENCH_pr8.json`` for the compiled training-step gate) —
machine-readable artifacts (throughput, latency percentiles,
peak memory, dtype) that CI and future PRs can diff against.
"""

from __future__ import annotations

import json
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import SCALES

#: Schema version of the BENCH_*.json artifacts.
BENCH_ARTIFACT_SCHEMA = "repro-bench/1"
#: Default artifact file for entries recorded without an explicit target.
BENCH_ARTIFACT_NAME = "BENCH_pr3.json"

_artifact_entries: dict[str, list[dict]] = {}


@pytest.fixture
def bench_artifact():
    """Record one machine-readable benchmark entry for a ``BENCH_*.json`` file.

    Call as ``bench_artifact(name, dtype=..., throughput=..., ...)``; every
    keyword lands verbatim in the artifact entry.  Recommended keys:
    ``dtype``, ``throughput`` + ``throughput_unit``, ``latency_ms``
    (mapping with ``p50``/``p95``/``p99``), ``peak_bytes``.  Pass
    ``artifact="BENCH_pr4.json"`` to target a different artifact file than
    the default ``BENCH_pr3.json``.
    """

    def record(name: str, artifact: str = BENCH_ARTIFACT_NAME, **fields) -> None:
        _artifact_entries.setdefault(artifact, []).append({"name": str(name), **fields})

    return record


def pytest_sessionfinish(session, exitstatus):
    """Merge collected benchmark entries into the repo-root artifact files.

    Entries recorded this session replace same-named entries from previous
    runs; everything else is kept, so a partial benchmark run (one file)
    never silently drops the other benchmarks' data points.
    """
    for artifact, entries in _artifact_entries.items():
        if not entries:
            continue
        path = Path(str(session.config.rootpath)) / artifact
        merged = {}
        if path.exists():
            try:
                previous = json.loads(path.read_text())
                if previous.get("schema") == BENCH_ARTIFACT_SCHEMA:
                    merged = {e["name"]: e for e in previous.get("entries", [])}
            except (json.JSONDecodeError, KeyError, TypeError):
                merged = {}
        merged.update({e["name"]: e for e in entries})
        payload = {
            "schema": BENCH_ARTIFACT_SCHEMA,
            "entries": sorted(merged.values(), key=lambda e: e["name"]),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def run_traced():
    """Run a callable and return ``(result, peak_traced_bytes)``.

    Shared tracemalloc wrapper for the peak-memory acceptance gates
    (inference engine, precision microbenchmark, serving fleet), so the
    measurement protocol stays identical across them.
    """

    def _run(fn):
        tracemalloc.start()
        try:
            result = fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return result, peak

    return _run


@pytest.fixture(scope="session")
def bench_scale():
    """Scale used by the table/figure regeneration benchmarks."""
    return SCALES["tiny"].with_overrides(
        hr_shape=(16, 16, 64),
        lr_factors=(2, 2, 4),
        crop_shape_lr=(4, 4, 8),
        n_points=32,
        samples_per_epoch=8,
        epochs=2,
        batch_size=2,
    )


@pytest.fixture(scope="session")
def bench_scale_solver(bench_scale):
    """Same scale but generating data with the actual Rayleigh–Bénard solver."""
    return bench_scale.with_overrides(backend="solver", t_final=4.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
