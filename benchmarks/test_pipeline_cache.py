"""Pipeline orchestration overhead: cold run vs warm (all-cache-hit) run.

The value proposition of the content-addressed pipeline is that re-running an
unchanged experiment costs artifact loads, not recomputation.  This benchmark
times the standard Table-1 DAG cold and warm and records both wall times (and
their ratio) in ``BENCH_pr9.json`` so CI and future PRs can track the cache's
effectiveness.
"""

import time

import pytest

from repro.pipeline import ArtifactStore, PipelineConfig, build_standard_pipeline, run_pipeline


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_warm_vs_cold(benchmark, bench_scale, once, tmp_path, bench_artifact):
    cfg = PipelineConfig(
        name="bench",
        scale_overrides={
            "hr_shape": list(bench_scale.hr_shape),
            "lr_factors": list(bench_scale.lr_factors),
            "crop_shape_lr": list(bench_scale.crop_shape_lr),
            "n_points": bench_scale.n_points,
            "samples_per_epoch": bench_scale.samples_per_epoch,
            "epochs": bench_scale.epochs,
            "batch_size": bench_scale.batch_size,
        },
        table1_gammas=(0.0, 0.0125),
        validate_table1=False,
        jobs=2,
    )
    store = ArtifactStore(tmp_path / "store")

    t0 = time.perf_counter()
    cold = run_pipeline(build_standard_pipeline(cfg), store=store, jobs=cfg.jobs)
    cold_seconds = time.perf_counter() - t0
    assert cold.ok and cold.counts() == {"computed": len(cold.results)}

    # Warm run under pytest-benchmark timing: must be 100% cache hits.
    warm = once(benchmark, run_pipeline, build_standard_pipeline(cfg),
                store=store, jobs=cfg.jobs)
    assert warm.ok
    assert warm.counts() == {"cached": len(warm.results)}
    warm_seconds = warm.seconds

    assert warm_seconds < cold_seconds, "cache hits must beat recomputation"
    bench_artifact(
        "pipeline_warm_vs_cold",
        artifact="BENCH_pr9.json",
        stages=len(cold.results),
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        speedup=cold_seconds / warm_seconds,
    )
