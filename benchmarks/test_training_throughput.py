"""Training-step throughput gates: distributed and compiled training.

Two acceptance gates share this module:

* **Distributed (ISSUE 4)** — at the same global batch (``world_size x
  batch_size`` samples from the same dataset, same model, same
  optimizer), a :class:`DistributedTrainer` step — node-fused
  forward/backward passes plus the bucketed ring all-reduce — must
  deliver **>= 1.5x** the step throughput of the seed's serial
  micro-batch loop, which rebuilt one tiny autodiff graph per worker and
  unconditionally requested query-coordinate gradients.  The baseline is
  a frozen replica of the seed ``Trainer.train_step`` (commit 6a03051)
  so the comparison keeps measuring the same thing as the underlying ops
  evolve.  Recorded in ``BENCH_pr4.json``.
* **Compiled training step (ISSUE 8)** — with the *equation loss active*
  (the double-backward regime), ``TrainerConfig.compile=True`` replays
  each micro-batch as one :class:`~repro.compile.CompiledTrainingStep`
  plan and must deliver **>= 1.5x** the throughput of the identical
  eager trainer, while remaining bit-identical to it.  Recorded in
  ``BENCH_pr8.json``.

Both measurements include data sampling and the optimizer update; the
gates use best-of-round timings with the compared paths interleaved so
background-load drift hits them symmetrically.
"""

import time

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.core import LossWeights, MeshfreeFlowNet, MeshfreeFlowNetConfig, compute_losses
from repro.data import SuperResolutionDataset
from repro.optim import Adam
from repro.simulation import synthetic_convection
from repro.training import DistributedTrainer, Trainer, TrainerConfig

WORLD_SIZE = 8
BATCH_SIZE = 2
N_POINTS = 128
ROUNDS = 4


@pytest.fixture(scope="module")
def training_setup():
    """Shared dataset/model scale for the throughput comparison."""
    result = synthetic_convection(nt=16, nz=16, nx=64, seed=3)
    dataset = SuperResolutionDataset(
        result, lr_factors=(2, 2, 4), crop_shape_lr=(4, 4, 8),
        n_points=N_POINTS, samples_per_epoch=64, seed=0,
    )
    return dataset


def seed_serial_step(model, optimizer, dataset, weights, step_index):
    """The seed's serial micro-batch loop (trainer.py @ 6a03051), frozen.

    One optimizer step = ``world_size`` independent micro-batch graphs,
    each backwarded with a 1/world_size-scaled loss, coordinates always
    requiring gradients.
    """
    optimizer.zero_grad()
    global_batch = BATCH_SIZE * WORLD_SIZE
    base = step_index * global_batch
    for rank in range(WORLD_SIZE):
        indices = [(base + rank * BATCH_SIZE + i) % 64 for i in range(BATCH_SIZE)]
        batch = dataset.sample_batch(indices, epoch=0)
        total, _ = compute_losses(
            model, Tensor(batch.lowres), Tensor(batch.coords, requires_grad=True),
            Tensor(batch.targets), None, weights, coord_scales=batch.coord_scales,
        )
        (total * (1.0 / WORLD_SIZE)).backward()
    optimizer.step()


@pytest.mark.benchmark(group="training")
def test_distributed_step_throughput(benchmark, bench_artifact, training_setup):
    """DistributedTrainer (allreduce path) >= 1.5x the seed serial loop."""
    dataset = training_setup
    weights = LossWeights(gamma=0.0)

    serial_model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(unet_norm="group"))
    serial_opt = Adam(serial_model.parameters(), lr=1e-3)

    config = TrainerConfig(
        epochs=1, batch_size=BATCH_SIZE, world_size=WORLD_SIZE, nodes=2,
        gamma=0.0, steps_per_epoch=ROUNDS, learning_rate=1e-3,
    )
    dist_model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(unet_norm="group"))
    trainer = DistributedTrainer(dist_model, dataset, config=config)
    trainer.model.train()
    trainer._begin_epoch(0)

    # Warm both paths (first-touch allocations, import-time caches).
    seed_serial_step(serial_model, serial_opt, dataset, weights, 0)
    trainer.train_step(0, 0)

    t_serial = t_dist = np.inf
    for round_index in range(1, ROUNDS):
        start = time.perf_counter()
        seed_serial_step(serial_model, serial_opt, dataset, weights, round_index)
        t_serial = min(t_serial, time.perf_counter() - start)
        start = time.perf_counter()
        trainer.train_step(round_index, 0)
        t_dist = min(t_dist, time.perf_counter() - start)

    benchmark.pedantic(lambda: trainer.train_step(0, 0), rounds=1, iterations=1)

    samples = WORLD_SIZE * BATCH_SIZE
    speedup = t_serial / t_dist
    for name, seconds in (("serial-seed", t_serial), ("allreduce", t_dist)):
        bench_artifact(
            f"training_step[{name}]", artifact="BENCH_pr4.json",
            dtype="float64",
            world_size=WORLD_SIZE, batch_size=BATCH_SIZE,
            throughput=round(samples / seconds, 1), throughput_unit="samples/s",
            latency_ms={"p50": round(seconds * 1e3, 3)},
        )
    bench_artifact(
        "training_step[speedup]", artifact="BENCH_pr4.json",
        speedup=round(speedup, 2), nodes=2,
        comm_bytes_per_step=int(trainer.communicator.total_bytes
                                / max(trainer.communicator.num_collectives, 1)
                                * trainer.buckets.num_buckets),
    )
    benchmark.extra_info.update({
        "speedup": round(speedup, 2),
        "serial_ms": round(t_serial * 1e3, 2),
        "allreduce_ms": round(t_dist * 1e3, 2),
    })
    assert speedup >= 1.5, (
        f"allreduce path speedup {speedup:.2f}x below the 1.5x acceptance bar "
        f"(serial {t_serial * 1e3:.1f} ms vs allreduce {t_dist * 1e3:.1f} ms per step)"
    )


@pytest.mark.benchmark(group="training")
def test_allreduce_gradients_match_serial(benchmark, training_setup):
    """Cross-check inside the benchmark scale: both paths yield the same gradient."""
    dataset = training_setup
    weights = LossWeights(gamma=0.0)
    config = TrainerConfig(epochs=1, batch_size=BATCH_SIZE, world_size=4,
                           gamma=0.0, steps_per_epoch=1)
    model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(unet_norm="group"))
    trainer = DistributedTrainer(model, dataset, config=config)

    def sync():
        return trainer.synchronize_gradients(0, 0)

    benchmark.pedantic(sync, rounds=1, iterations=1)

    reference = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny(unet_norm="group"))
    reference.load_state_dict(model.state_dict())
    reference.zero_grad()
    for _node, _acc, _rank, indices in trainer.last_step_indices:
        batch = dataset.sample_batch(indices, epoch=0)
        total, _ = compute_losses(
            reference, Tensor(batch.lowres), Tensor(batch.coords, requires_grad=True),
            Tensor(batch.targets), None, weights, coord_scales=batch.coord_scales,
        )
        (total * (1.0 / config.world_size)).backward()
    worst = max(
        float(np.max(np.abs(p.grad - q.grad)))
        for p, q in zip(model.parameters(), reference.parameters())
    )
    benchmark.extra_info["max_grad_diff"] = worst
    assert worst <= 1e-12


@pytest.mark.benchmark(group="training")
def test_compiled_equation_loss_step_throughput(benchmark, bench_artifact):
    """Compiled physics-constrained step >= 1.5x the eager trainer (ISSUE 8).

    Same scenario dataset, same seeded model init, equation loss ON
    (gamma > 0, so the parameter VJP differentiates through the
    second-order derivative stack): the only difference between the two
    trainers is ``TrainerConfig.compile``.  Besides the throughput gate,
    the measured steps must stay bit-identical and fallback-free — a
    speedup obtained by silently degrading the computation is a failure.
    """
    from repro.scenarios import get_scenario

    scenario = get_scenario("rayleigh_benard")
    hr = scenario.generate(nt=16, nz=16, nx=32, seed=3)
    dataset = scenario.make_dataset(
        results=hr, lr_factors=(2, 2, 2), crop_shape_lr=(4, 4, 8),
        n_points=N_POINTS, samples_per_epoch=64, seed=0,
    )
    pde_system = scenario.make_pde_system()

    def make_trainer(compile_flag):
        model = scenario.build_model("tiny")
        config = TrainerConfig(
            epochs=1, batch_size=BATCH_SIZE, world_size=1, gamma=0.0125,
            steps_per_epoch=ROUNDS, learning_rate=1e-3, seed=0,
            compile=compile_flag,
        )
        return Trainer(model, dataset, pde_system=pde_system, config=config)

    eager_tr, compiled_tr = make_trainer(False), make_trainer(True)
    records = [eager_tr.train_step(0, 0), compiled_tr.train_step(0, 0)]  # warm
    assert records[0] == records[1]  # bit-identical losses from step one

    t_eager = t_compiled = np.inf
    for round_index in range(1, ROUNDS):
        start = time.perf_counter()
        r_eager = eager_tr.train_step(round_index, 0)
        t_eager = min(t_eager, time.perf_counter() - start)
        start = time.perf_counter()
        r_compiled = compiled_tr.train_step(round_index, 0)
        t_compiled = min(t_compiled, time.perf_counter() - start)
        assert r_eager == r_compiled, f"round {round_index} diverged"

    benchmark.pedantic(lambda: compiled_tr.train_step(0, 0), rounds=1, iterations=1)

    stats = compiled_tr._compiled_step.stats()
    assert stats["fallbacks"] == {}, f"silent-degradation guard: {stats}"
    assert stats["plan_hits"] >= ROUNDS, stats

    samples = BATCH_SIZE
    speedup = t_eager / t_compiled
    for name, seconds in (("eager-eqloss", t_eager), ("compiled-eqloss", t_compiled)):
        bench_artifact(
            f"training_step[{name}]", artifact="BENCH_pr8.json",
            dtype="float64", scenario=scenario.name, gamma=0.0125,
            batch_size=BATCH_SIZE, n_points=N_POINTS,
            throughput=round(samples / seconds, 1), throughput_unit="samples/s",
            latency_ms={"p50": round(seconds * 1e3, 3)},
        )
    bench_artifact(
        "training_step[compile-speedup]", artifact="BENCH_pr8.json",
        speedup=round(speedup, 2),
        n_plans=stats["n_plans"], arena_bytes=stats["arena_bytes"],
    )
    benchmark.extra_info.update({
        "speedup": round(speedup, 2),
        "eager_ms": round(t_eager * 1e3, 2),
        "compiled_ms": round(t_compiled * 1e3, 2),
    })
    assert speedup >= 1.5, (
        f"compiled training step speedup {speedup:.2f}x below the 1.5x bar "
        f"(eager {t_eager * 1e3:.1f} ms vs compiled {t_compiled * 1e3:.1f} ms)"
    )
