"""Table 1 — equation-loss weight (γ) sweep.

Regenerates the paper's γ ablation at benchmark scale: one MeshfreeFlowNet is
trained per γ and evaluated with the nine physics metrics on a held-out
simulation.  The paper's qualitative findings to compare against:

* γ = γ* = 0.0125 gives the best average R²,
* very large γ (≥ 0.4) severely degrades the reconstruction.
"""

import pytest

from repro.experiments import run_table1_gamma_sweep
from repro.metrics import format_table


@pytest.mark.benchmark(group="table1")
def test_table1_gamma_sweep(benchmark, bench_scale, once):
    result = once(benchmark, run_table1_gamma_sweep, scale=bench_scale,
                  gammas=(0.0, 0.0125, 0.2))
    reports = result["reports"]
    assert set(reports) == {"gamma=0", "gamma=0.0125", "gamma=0.2"}
    for report in reports.values():
        # all nine metrics must be present and finite
        assert len(report.nmae) == 9
        assert all(v >= 0 for v in report.nmae.values())
    print()
    print(format_table(reports, title="Table 1 (benchmark scale) — gamma sweep"))
