"""Figure 6 — qualitative comparison: low-res input / super-resolved / ground truth.

Produces the field arrays of the figure's three rows (plus the trilinear
baseline) for one snapshot and reports reconstruction errors.
"""

import numpy as np
import pytest

from repro.experiments import run_fig6_qualitative


@pytest.mark.benchmark(group="fig6")
def test_fig6_qualitative_fields(benchmark, bench_scale, once):
    result = once(benchmark, run_fig6_qualitative, scale=bench_scale, gamma=0.0125)
    channels = ("p", "T", "u", "w")
    assert result["channels"] == channels
    for group in ("lowres", "prediction", "trilinear", "ground_truth"):
        assert set(result[group]) == set(channels)
        for field in result[group].values():
            assert field.ndim == 2
            assert np.isfinite(field).all()
    # Prediction grids must be at the high resolution, inputs at the low resolution.
    assert result["prediction"]["T"].shape == result["ground_truth"]["T"].shape
    assert result["lowres"]["T"].size < result["ground_truth"]["T"].size
    print()
    print(f"Fig. 6 reconstruction MAE — MeshfreeFlowNet: {result['errors']['prediction_mae']:.4f}, "
          f"trilinear: {result['errors']['trilinear_mae']:.4f}")
