"""Table 2 — MeshfreeFlowNet vs. Baseline I (trilinear) and Baseline II (U-Net decoder).

Paper shape to compare against: the trilinear baseline fails badly on the
velocity-derived metrics, the U-Net decoder baseline is much better, and
MeshfreeFlowNet (especially with γ = γ*) is best.
"""

import pytest

from repro.experiments import run_table2_baselines
from repro.metrics import format_table


@pytest.mark.benchmark(group="table2")
def test_table2_baselines(benchmark, bench_scale, once):
    result = once(benchmark, run_table2_baselines, scale=bench_scale)
    reports = result["reports"]
    assert set(reports) == {"baseline_I_trilinear", "baseline_II_unet", "mfn_gamma=0", "mfn_gamma=gamma*"}
    for report in reports.values():
        assert len(report.r2) == 9
    print()
    print(format_table(reports, title="Table 2 (benchmark scale) — baselines comparison"))
