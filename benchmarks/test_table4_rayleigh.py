"""Table 4 — generalisation across Rayleigh-number boundary conditions.

Trains on a mixture of Rayleigh numbers and evaluates on in-range and
out-of-range Rayleigh numbers.  Paper shape to compare against: performance is
best for Rayleigh numbers inside (or near) the training range and degrades
gradually, not catastrophically, far outside it.
"""

import pytest

from repro.experiments import run_table4_rayleigh_transfer
from repro.metrics import format_table


@pytest.mark.benchmark(group="table4")
def test_table4_rayleigh_transfer(benchmark, bench_scale, once):
    result = once(
        benchmark, run_table4_rayleigh_transfer, scale=bench_scale,
        train_rayleigh=(2e5, 9e6),
        test_rayleigh=(1e4, 5e6, 1e8),
    )
    reports = result["reports"]
    assert set(reports) == {"Ra=1e+04", "Ra=5e+06", "Ra=1e+08"}
    for report in reports.values():
        assert len(report.r2) == 9
    print()
    print(format_table(reports, title="Table 4 (benchmark scale) — Rayleigh-number transfer"))
