"""Figure 2 — a typical Rayleigh–Bénard solution (T, p, u, w fields).

Runs the data-generating solver and extracts a late-time snapshot of the four
physical fields plus its turbulence statistics (the data one would contour to
regenerate the figure).
"""

import numpy as np
import pytest

from repro.experiments import run_fig2_simulation


@pytest.mark.benchmark(group="fig2")
def test_fig2_simulation_snapshot(benchmark, bench_scale_solver, once):
    result = once(benchmark, run_fig2_simulation, scale=bench_scale_solver)
    fields = result["fields"]
    assert set(fields) == {"p", "T", "u", "w"}
    nz, nx = bench_scale_solver.hr_shape[1:]
    for name, field in fields.items():
        assert field.shape == (nz, nx)
        assert np.isfinite(field).all()
    # The temperature field must retain the hot-bottom / cold-top stratification.
    temp = fields["T"]
    assert temp[:2].mean() > temp[-2:].mean()
    summary = result["turbulence_summary"]
    assert summary["Etot"] >= 0.0
    print()
    print(f"Fig. 2 snapshot at t={result['time']:.2f} (Ra={result['rayleigh']:.1e}):")
    for key, value in summary.items():
        print(f"  {key:20s} {value:12.5g}")
