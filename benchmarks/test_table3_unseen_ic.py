"""Table 3 — generalisation to unseen initial conditions (1 vs N training datasets).

Paper shape to compare against: training on more initial conditions improves
every metric on an unseen initial condition.
"""

import pytest

from repro.experiments import run_table3_unseen_ic
from repro.metrics import format_table


@pytest.mark.benchmark(group="table3")
def test_table3_unseen_initial_conditions(benchmark, bench_scale, once):
    result = once(benchmark, run_table3_unseen_ic, scale=bench_scale, dataset_counts=(1, 3))
    reports = result["reports"]
    assert set(reports) == {"1_dataset", "3_datasets"}
    for report in reports.values():
        assert len(report.nmae) == 9
    print()
    print(format_table(reports, title="Table 3 (benchmark scale) — unseen initial conditions"))
