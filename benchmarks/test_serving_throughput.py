"""Serving throughput benchmark: coalescing scheduler vs serial engine calls.

Eight concurrent clients issue many small point queries against one shared
domain.  The **serial** baseline pays one engine call per request (the
latent cache is warm for both paths, so the comparison isolates scheduling
and decode batching, not encoding).  The **served** path routes the same
requests through :class:`repro.serving.ModelServer`, whose micro-batching
scheduler coalesces requests from different clients into shared fused
decode batches.

Acceptance criteria (asserted):

* aggregate served throughput ≥ 2x the serial per-request throughput;
* every served value is bit-identical to the direct engine result.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.inference import InferenceEngine
from repro.serving import BatchPolicy, ModelServer, QueryRequest
from repro.utils import percentiles

N_CLIENTS = 8
REQUESTS_PER_CLIENT = 12
POINTS_PER_REQUEST = 24
DOMAIN_SHAPE = (4, 16, 16)


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()


@pytest.fixture(scope="module")
def domain():
    rng = np.random.default_rng(0)
    return rng.standard_normal((1, 4, *DOMAIN_SHAPE))


@pytest.fixture(scope="module")
def request_coords():
    rng = np.random.default_rng(1)
    return [rng.random((POINTS_PER_REQUEST, 3))
            for _ in range(N_CLIENTS * REQUESTS_PER_CLIENT)]


@pytest.mark.benchmark(group="serving")
def test_coalescing_beats_serial_2x(benchmark, model, domain, request_coords):
    """≥ 8 concurrent clients through the scheduler: ≥ 2x serial throughput."""
    n_requests = len(request_coords)

    # ---- serial baseline: one engine call per request, warm latent cache.
    engine = InferenceEngine(model)
    engine.query_points(domain, request_coords[0])  # warm the encode
    start = time.perf_counter()
    serial_results = [engine.query_points(domain, coords)
                      for coords in request_coords]
    serial_seconds = time.perf_counter() - start
    serial_rps = n_requests / serial_seconds

    # ---- served path: 8 client threads submitting through the scheduler.
    server = ModelServer(
        model, n_workers=2,
        policy=BatchPolicy(max_requests=64, max_points=1 << 15, max_wait=0.004),
    )
    try:
        server.register_domain("dom", domain)
        server.query(QueryRequest("dom", coords=request_coords[0]))  # warm-up
        served_results = [None] * n_requests

        def client(client_id):
            futures = [
                (i, server.submit(QueryRequest("dom", coords=request_coords[i])))
                for i in range(client_id, n_requests, N_CLIENTS)
            ]
            for i, future in futures:
                served_results[i] = future.result(timeout=120)

        def served_pass():
            threads = [threading.Thread(target=client, args=(c,))
                       for c in range(N_CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        # Three rounds, gated on the fastest: damps scheduler/CI timing noise
        # without weakening the bar (a correct implementation clears 2x on
        # every round locally; a regression fails all three).
        benchmark.pedantic(served_pass, rounds=3, iterations=1)
        served_seconds = benchmark.stats.stats.min
        served_rps = n_requests / served_seconds
        stats = server.stats()
    finally:
        server.close()

    # Bit-identical results for every request.
    for result, want in zip(served_results, serial_results):
        assert result.status == "ok"
        assert np.array_equal(result.values, want)

    speedup = served_rps / serial_rps
    benchmark.extra_info.update({
        "serial_rps": round(serial_rps, 1),
        "served_rps": round(served_rps, 1),
        "speedup": round(speedup, 2),
        "mean_requests_per_batch": round(stats["requests_per_batch"], 2),
        "served_latency_p99_ms": round(stats["latency_p99"] * 1e3, 3),
        "cache_hit_rate": round(stats["cache_hit_rate"], 4),
    })
    assert speedup >= 2.0, (
        f"coalescing speedup {speedup:.2f}x below the 2x acceptance bar "
        f"(serial {serial_rps:.0f} req/s vs served {served_rps:.0f} req/s)"
    )
    # The scheduler must actually have coalesced cross-client requests.
    assert stats["requests_per_batch"] > 1.5


@pytest.mark.benchmark(group="serving")
def test_float32_fleet_speedup_and_memory(benchmark, model, domain, bench_artifact, run_traced):
    """A float32 replica fleet: ≥1.5x served throughput, ≥1.8x peak-memory cut.

    One server hosts a float64 and a float32 fleet side by side
    (``precisions=("float64", "float32")``, shared latent cache with
    per-dtype keys).  Identical grid workloads — decode-bound, warm latent
    cache — are pushed through each fleet; the float32 pass must clear the
    PR's precision acceptance bars against the float64 pass.  Both data
    points are recorded in the ``BENCH_pr3.json`` artifact.
    """
    grid_shape = (8, 64, 64)
    n_requests = 4
    n_points = n_requests * int(np.prod(grid_shape))
    server = ModelServer(
        model, n_workers=2, precisions=("float64", "float32"),
        policy=BatchPolicy(max_requests=8, max_points=1 << 22, max_wait=0.002),
        chunk_size=16384,
    )
    try:
        server.register_domain("dom", domain)

        def fleet_pass(dtype):
            futures = [server.submit(QueryRequest("dom", output_shape=grid_shape,
                                                  dtype=dtype))
                       for _ in range(n_requests)]
            return [f.result(timeout=120) for f in futures]

        # Warm both fleets: encodes land in the shared cache (per-dtype
        # keys), so the measured passes isolate the decode hot path.
        ref64 = fleet_pass("float64")
        ref32 = fleet_pass("float32")

        t64 = t32 = float("inf")
        lat64, lat32 = [], []
        for _ in range(3):
            start = time.perf_counter()
            r64 = fleet_pass("float64")
            t64 = min(t64, time.perf_counter() - start)
            lat64 += [r.queue_seconds + r.service_seconds for r in r64]
            start = time.perf_counter()
            r32 = fleet_pass("float32")
            t32 = min(t32, time.perf_counter() - start)
            lat32 += [r.queue_seconds + r.service_seconds for r in r32]

        peak64 = run_traced(lambda: fleet_pass("float64"))[1]
        peak32 = run_traced(lambda: fleet_pass("float32"))[1]
        benchmark.pedantic(lambda: fleet_pass("float32"), rounds=1, iterations=1)
    finally:
        server.close()

    for results, dtype in ((ref64, "float64"), (ref32, "float32")):
        for r in results:
            assert r.ok
            assert r.values.dtype == np.dtype(dtype)
    # float32 fleet agrees with the float64 fleet to float32 tolerance.
    assert np.max(np.abs(ref64[0].values - ref32[0].values)) < 1e-4

    speedup = t64 / t32
    memory_cut = peak64 / max(peak32, 1)
    for dtype, seconds, peak, lats in (("float64", t64, peak64, lat64),
                                       ("float32", t32, peak32, lat32)):
        bench_artifact(
            f"serving_grid_fleet[{dtype}]", dtype=dtype,
            throughput=round(n_points / seconds), throughput_unit="points/s",
            latency_ms={f"p{p:g}": round(v * 1e3, 3)
                        for p, v in percentiles(lats).items()},
            peak_bytes=int(peak),
        )
    benchmark.extra_info.update({
        "float32_speedup": round(speedup, 2),
        "float32_memory_cut": round(memory_cut, 2),
    })
    assert speedup >= 1.5, (
        f"float32 fleet throughput gain {speedup:.2f}x below the 1.5x bar "
        f"(float64 {t64 * 1e3:.0f} ms vs float32 {t32 * 1e3:.0f} ms per pass)"
    )
    assert memory_cut >= 1.8, (
        f"float32 fleet peak-memory cut {memory_cut:.2f}x below the 1.8x bar "
        f"(float64 {peak64 / 1e6:.1f} MB vs float32 {peak32 / 1e6:.1f} MB)"
    )
