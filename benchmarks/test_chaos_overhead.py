"""Fault-tolerance layer: no-fault overhead gate + chaos survival record.

The PR 10 acceptance gate.  With no :class:`~repro.faults.FaultPlan` active,
the only per-batch additions on the serving hot path are module-global
``ACTIVE is None`` guards, so a supervised ``_serve_batch`` call must stay
within **3%** of invoking ``run_batch`` directly (interleaved min-of-rounds,
drift-symmetric, smallest-of-trials — the same methodology as the PR 7
observability gate).  A second entry records a seeded chaos wave through a
live server: every request resolves to a definite status and none are lost.
"""

import gc
import time

import numpy as np
import pytest

from repro.core import MeshfreeFlowNet, MeshfreeFlowNetConfig
from repro.faults import FaultPlan
from repro.serving import (
    STATUS_ERROR,
    STATUS_OK,
    BatchPolicy,
    MicroBatchScheduler,
    ModelServer,
    QueryRequest,
    run_batch,
)

N_POINTS = 2048
BATCH_REQUESTS = 2
OVERHEAD_GATE = 0.03


def _interleaved_best(fn_a, fn_b, rounds):
    """Fastest round of two callables timed alternately (drift-symmetric)."""
    best_a = best_b = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


@pytest.mark.benchmark(group="faults")
def test_no_fault_overhead_gate(bench_artifact):
    """Supervised serve path ≤3% over bare run_batch when no plan is active."""
    model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    rng = np.random.default_rng(0)
    server = ModelServer(model, n_workers=1, policy=BatchPolicy(max_wait=0.0))
    server.register_domain("d", rng.standard_normal((1, 4, 4, 16, 16)))
    engines = server._worker_engines[0]
    coords = rng.random((BATCH_REQUESTS, N_POINTS, 3))

    def fresh_batch():
        """A never-resolved micro-batch of BATCH_REQUESTS point queries."""
        feeder = MicroBatchScheduler(policy=BatchPolicy(max_wait=0.0))
        for i in range(BATCH_REQUESTS):
            feeder.submit(QueryRequest("d", coords=coords[i]))
        batch = feeder.next_batch()
        assert len(batch) == BATCH_REQUESTS
        return batch

    def raw_arm():
        # Exactly what the pre-supervision worker loop executed.
        run_batch(engines, fresh_batch(), server._resolve_domain,
                  telemetry=server.telemetry, default_dtype=server.precisions[0])

    def supervised_arm():
        # The supervised path: the faults ACTIVE guard + the same call.
        server._serve_batch(engines, fresh_batch())

    try:
        raw_arm()  # warm the latent-tile cache and allocators
        supervised_arm()
        gc.collect()
        overhead = np.inf
        t_raw = t_supervised = np.inf
        # Smallest ratio of independent trials: the guard cost is a
        # constant, so noise can only inflate the ratio, never hide a
        # real regression.
        for _ in range(3):
            trial_raw, trial_supervised = _interleaved_best(
                raw_arm, supervised_arm, rounds=10)
            if trial_supervised / trial_raw - 1.0 < overhead:
                overhead = trial_supervised / trial_raw - 1.0
                t_raw, t_supervised = trial_raw, trial_supervised
    finally:
        server.close()

    points = BATCH_REQUESTS * N_POINTS
    for mode, seconds in (("raw", t_raw), ("supervised", t_supervised)):
        bench_artifact(
            f"faults_serve_batch[{mode}]", artifact="BENCH_pr10.json",
            mode=mode, dtype="float64",
            throughput=round(points / seconds), throughput_unit="points/s",
            latency_ms={"p50": round(seconds * 1e3, 3)},
        )
    bench_artifact(
        "faults_disabled_overhead", artifact="BENCH_pr10.json",
        overhead_pct=round(overhead * 100, 2), gate_pct=OVERHEAD_GATE * 100,
    )
    assert overhead <= OVERHEAD_GATE, (
        f"no-fault serve overhead {overhead:.1%} exceeds the {OVERHEAD_GATE:.0%} gate "
        f"(raw {t_raw * 1e3:.2f} ms vs supervised {t_supervised * 1e3:.2f} ms)"
    )


@pytest.mark.benchmark(group="faults")
def test_chaos_survival_record(bench_artifact):
    """Seeded chaos wave: every request resolves definitely, none are lost."""
    model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    rng = np.random.default_rng(1)
    server = ModelServer(model, n_workers=2, policy=BatchPolicy(max_wait=0.002),
                         breaker_cooldown=0.05)
    server.register_domain("d", rng.standard_normal((1, 4, 4, 16, 16)))
    coords = rng.random((32, 3))

    plan = FaultPlan(seed=10, name="bench-chaos")
    plan.fail("serving.worker", every=4, message="replica crash")
    plan.delay("serving.batch", 0.002, p=0.2)
    try:
        with plan:
            results = [server.query(QueryRequest("d", coords=coords), timeout=60)
                       for _ in range(24)]
        statuses = [r.status for r in results]
        stats = server.stats()
    finally:
        server.close()

    definite = sum(s in (STATUS_OK, STATUS_ERROR) for s in statuses)
    assert definite == len(results)  # nothing hung or was silently dropped
    assert statuses.count(STATUS_ERROR) >= 1
    bench_artifact(
        "faults_chaos_survival", artifact="BENCH_pr10.json",
        requests=len(results), ok=statuses.count(STATUS_OK),
        errors=statuses.count(STATUS_ERROR), lost=len(results) - definite,
        faults_injected={f"{site}:{kind}": n
                         for (site, kind), n in sorted(plan.injected().items())},
        worker_crashes=stats["worker_crashes"],
    )
