"""Micro-benchmarks of the computational kernels (multi-round timings).

These are conventional pytest-benchmark measurements of the hot paths:
U-Net encoding, continuous decoding, the equation-loss derivative stack,
the Rayleigh–Bénard solver step and the ring all-reduce.  Each hot-path
benchmark also reports rolling p50/p95/p99 round latencies (via
:func:`repro.utils.percentiles` — the same helpers the serving telemetry
uses) in its ``extra_info``, since tail latency is what the serving layer
actually pays.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, conv3d, inference_mode, no_grad, ops
from repro.core import LossWeights, MeshfreeFlowNet, MeshfreeFlowNetConfig, compute_losses
from repro.distributed import ring_allreduce
from repro.pde import RayleighBenard2D
from repro.simulation import RayleighBenardConfig, RayleighBenardSolver
from repro.utils import percentiles


def report_percentiles(benchmark):
    """Attach p50/p95/p99 of the raw round timings to the benchmark report."""
    rounds = benchmark.stats.stats.data
    if rounds:
        benchmark.extra_info.update({
            f"p{p:g}_ms": round(value * 1e3, 4)
            for p, value in percentiles(rounds).items()
        })


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    return (
        Tensor(rng.standard_normal((2, 4, 2, 8, 8))),
        Tensor(rng.random((2, 32, 3)), requires_grad=True),
        Tensor(rng.standard_normal((2, 32, 4))),
    )


@pytest.mark.benchmark(group="kernels")
def test_conv3d_forward(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 8, 4, 16, 16)))
    w = Tensor(rng.standard_normal((8, 8, 3, 3, 3)))
    benchmark(lambda: conv3d(x, w, padding=1))


@pytest.mark.benchmark(group="kernels")
def test_unet_encode(benchmark, model, inputs):
    lowres, _, _ = inputs
    benchmark(lambda: model.latent_grid(lowres))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode(benchmark, model, inputs):
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)
    benchmark(lambda: model.decode(grid, coords))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_prediction_loss_step(benchmark, model, inputs):
    lowres, coords, targets = inputs
    weights = LossWeights(gamma=0.0)

    def step():
        model.zero_grad()
        total, _ = compute_losses(model, lowres, coords, targets, None, weights)
        total.backward()

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_equation_loss_step(benchmark, model, inputs):
    """Full physics-constrained step: prediction + equation loss + backward."""
    lowres, coords, targets = inputs
    pde = RayleighBenard2D(rayleigh=1e6)
    weights = LossWeights(gamma=0.0125)

    def step():
        model.zero_grad()
        total, _ = compute_losses(model, lowres, coords, targets, pde, weights,
                                  coord_scales=(1.0, 1.0, 4.0))
        total.backward()

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode_no_grad(benchmark, model, inputs):
    """Decode baseline under no_grad (graph recording skipped at apply time)."""
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)

    def decode():
        with no_grad():
            return model.decode(grid, coords)

    benchmark(decode)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode_inference_mode(benchmark, model, inputs):
    """Decode under the inference-mode fast path (lean Op.apply dispatch)."""
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)

    def decode():
        with inference_mode():
            return model.decode(grid, coords)

    benchmark(decode)
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_solver_step(benchmark):
    solver = RayleighBenardSolver(RayleighBenardConfig(nz=32, nx=128, t_final=1.0, seed=0))
    benchmark(lambda: solver.step(1e-3))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_ring_allreduce_8_ranks(benchmark):
    rng = np.random.default_rng(0)
    buffers = [rng.standard_normal(40_000) for _ in range(8)]
    benchmark(lambda: ring_allreduce(buffers, average=True))
