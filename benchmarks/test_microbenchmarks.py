"""Micro-benchmarks of the computational kernels (multi-round timings).

These are conventional pytest-benchmark measurements of the hot paths:
U-Net encoding, continuous decoding, the equation-loss derivative stack,
the Rayleigh–Bénard solver step and the ring all-reduce.  Each hot-path
benchmark also reports rolling p50/p95/p99 round latencies (via
:func:`repro.utils.percentiles` — the same helpers the serving telemetry
uses) in its ``extra_info``, since tail latency is what the serving layer
actually pays.
"""

import time

import numpy as np
import pytest

from repro.autodiff import Tensor, conv3d, inference_mode, no_grad
from repro.core import LossWeights, MeshfreeFlowNet, MeshfreeFlowNetConfig, compute_losses
from repro.distributed import ring_allreduce
from repro.inference import InferenceEngine
from repro.pde import RayleighBenard2D
from repro.simulation import RayleighBenardConfig, RayleighBenardSolver
from repro.utils import percentiles


def report_percentiles(benchmark):
    """Attach p50/p95/p99 of the raw round timings to the benchmark report."""
    rounds = benchmark.stats.stats.data
    if rounds:
        benchmark.extra_info.update({
            f"p{p:g}_ms": round(value * 1e3, 4)
            for p, value in percentiles(rounds).items()
        })


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    return (
        Tensor(rng.standard_normal((2, 4, 2, 8, 8))),
        Tensor(rng.random((2, 32, 3)), requires_grad=True),
        Tensor(rng.standard_normal((2, 32, 4))),
    )


@pytest.mark.benchmark(group="kernels")
def test_conv3d_forward(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 8, 4, 16, 16)))
    w = Tensor(rng.standard_normal((8, 8, 3, 3, 3)))
    benchmark(lambda: conv3d(x, w, padding=1))


@pytest.mark.benchmark(group="kernels")
def test_unet_encode(benchmark, model, inputs):
    lowres, _, _ = inputs
    benchmark(lambda: model.latent_grid(lowres))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode(benchmark, model, inputs):
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)
    benchmark(lambda: model.decode(grid, coords))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_prediction_loss_step(benchmark, model, inputs):
    lowres, coords, targets = inputs
    weights = LossWeights(gamma=0.0)

    def step():
        model.zero_grad()
        total, _ = compute_losses(model, lowres, coords, targets, None, weights)
        total.backward()

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_equation_loss_step(benchmark, model, inputs):
    """Full physics-constrained step: prediction + equation loss + backward."""
    lowres, coords, targets = inputs
    pde = RayleighBenard2D(rayleigh=1e6)
    weights = LossWeights(gamma=0.0125)

    def step():
        model.zero_grad()
        total, _ = compute_losses(model, lowres, coords, targets, pde, weights,
                                  coord_scales=(1.0, 1.0, 4.0))
        total.backward()

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode_no_grad(benchmark, model, inputs):
    """Decode baseline under no_grad (graph recording skipped at apply time)."""
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)

    def decode():
        with no_grad():
            return model.decode(grid, coords)

    benchmark(decode)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode_inference_mode(benchmark, model, inputs):
    """Decode under the inference-mode fast path (lean Op.apply dispatch)."""
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)

    def decode():
        with inference_mode():
            return model.decode(grid, coords)

    benchmark(decode)
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="precision")
def test_float32_inference_speedup_and_memory(benchmark, bench_artifact, run_traced):
    """Float32 policy on the inference hot path: ≥1.5x throughput, ≥1.8x memory cut.

    Runs the same full-domain encode + fused decode workload through a
    float64 engine and a weight-cast float32 engine (fresh engines per
    measured pass, so every pass pays encode + decode), asserting the PR's
    precision acceptance criteria and recording both data points in the
    ``BENCH_pr3.json`` artifact.
    """
    domain_shape = (4, 32, 64)
    output_shape = (8, 64, 128)
    # Large fused decode batches: at 4096 slots both dtypes fit in cache and
    # only the BLAS width differs (~1.5x); at 16k slots the float64 working
    # set spills L3, which is exactly the memory-bandwidth cost the float32
    # serving path exists to halve.
    chunk_size = 16384
    rng = np.random.default_rng(0)
    lowres = rng.standard_normal((1, 4, *domain_shape))
    model64 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    model32 = model64.replicate(1, share_parameters=False)[0].astype("float32")
    n_points = int(np.prod(output_shape))

    def run(model):
        engine = InferenceEngine(model, chunk_size=chunk_size)  # cold cache
        return engine.predict_grid(lowres, output_shape)

    # Interleave the timed passes so drift in background load hits both
    # dtypes symmetrically; gate on the fastest round of each.
    t64 = t32 = np.inf
    for _ in range(3):
        start = time.perf_counter()
        out64 = run(model64)
        t64 = min(t64, time.perf_counter() - start)
        start = time.perf_counter()
        out32 = run(model32)
        t32 = min(t32, time.perf_counter() - start)

    peak64 = run_traced(lambda: run(model64))[1]
    peak32 = run_traced(lambda: run(model32))[1]
    benchmark.pedantic(lambda: run(model32), rounds=1, iterations=1)

    assert out64.dtype == np.float64 and out32.dtype == np.float32
    assert np.max(np.abs(out64 - out32)) < 1e-4  # float32-tolerance agreement

    speedup = t64 / t32
    memory_cut = peak64 / max(peak32, 1)
    for dtype, seconds, peak in (("float64", t64, peak64), ("float32", t32, peak32)):
        bench_artifact(
            f"inference_predict_grid[{dtype}]", dtype=dtype,
            throughput=round(n_points / seconds), throughput_unit="points/s",
            latency_ms={"p50": round(seconds * 1e3, 3)}, peak_bytes=int(peak),
        )
    benchmark.extra_info.update({
        "float32_speedup": round(speedup, 2),
        "float32_memory_cut": round(memory_cut, 2),
        "float64_points_per_sec": round(n_points / t64),
        "float32_points_per_sec": round(n_points / t32),
    })
    assert speedup >= 1.5, (
        f"float32 throughput gain {speedup:.2f}x below the 1.5x acceptance bar "
        f"(float64 {t64 * 1e3:.0f} ms vs float32 {t32 * 1e3:.0f} ms)"
    )
    assert memory_cut >= 1.8, (
        f"float32 peak-memory cut {memory_cut:.2f}x below the 1.8x acceptance bar "
        f"(float64 {peak64 / 1e6:.1f} MB vs float32 {peak32 / 1e6:.1f} MB)"
    )


@pytest.mark.benchmark(group="kernels")
def test_solver_step(benchmark):
    solver = RayleighBenardSolver(RayleighBenardConfig(nz=32, nx=128, t_final=1.0, seed=0))
    benchmark(lambda: solver.step(1e-3))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_ring_allreduce_8_ranks(benchmark):
    rng = np.random.default_rng(0)
    buffers = [rng.standard_normal(40_000) for _ in range(8)]
    benchmark(lambda: ring_allreduce(buffers, average=True))
