"""Micro-benchmarks of the computational kernels (multi-round timings).

These are conventional pytest-benchmark measurements of the hot paths:
U-Net encoding, continuous decoding, the equation-loss derivative stack,
the Rayleigh–Bénard solver step and the ring all-reduce.  Each hot-path
benchmark also reports rolling p50/p95/p99 round latencies (via
:func:`repro.utils.percentiles` — the same helpers the serving telemetry
uses) in its ``extra_info``, since tail latency is what the serving layer
actually pays.
"""

import time

import numpy as np
import pytest

from repro.autodiff import Tensor, conv3d, inference_mode, no_grad
from repro.core import LossWeights, MeshfreeFlowNet, MeshfreeFlowNetConfig, compute_losses
from repro.distributed import ring_allreduce
from repro.inference import InferenceEngine
from repro.pde import RayleighBenard2D
from repro.simulation import RayleighBenardConfig, RayleighBenardSolver
from repro.utils import percentiles


def report_percentiles(benchmark):
    """Attach p50/p95/p99 of the raw round timings to the benchmark report."""
    rounds = benchmark.stats.stats.data
    if rounds:
        benchmark.extra_info.update({
            f"p{p:g}_ms": round(value * 1e3, 4)
            for p, value in percentiles(rounds).items()
        })


@pytest.fixture(scope="module")
def model():
    return MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny())


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(0)
    return (
        Tensor(rng.standard_normal((2, 4, 2, 8, 8))),
        Tensor(rng.random((2, 32, 3)), requires_grad=True),
        Tensor(rng.standard_normal((2, 32, 4))),
    )


@pytest.mark.benchmark(group="kernels")
def test_conv3d_forward(benchmark):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((2, 8, 4, 16, 16)))
    w = Tensor(rng.standard_normal((8, 8, 3, 3, 3)))
    benchmark(lambda: conv3d(x, w, padding=1))


@pytest.mark.benchmark(group="kernels")
def test_unet_encode(benchmark, model, inputs):
    lowres, _, _ = inputs
    benchmark(lambda: model.latent_grid(lowres))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode(benchmark, model, inputs):
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)
    benchmark(lambda: model.decode(grid, coords))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_prediction_loss_step(benchmark, model, inputs):
    lowres, coords, targets = inputs
    weights = LossWeights(gamma=0.0)

    def step():
        model.zero_grad()
        total, _ = compute_losses(model, lowres, coords, targets, None, weights)
        total.backward()

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_equation_loss_step(benchmark, model, inputs):
    """Full physics-constrained step: prediction + equation loss + backward."""
    lowres, coords, targets = inputs
    pde = RayleighBenard2D(rayleigh=1e6)
    weights = LossWeights(gamma=0.0125)

    def step():
        model.zero_grad()
        total, _ = compute_losses(model, lowres, coords, targets, pde, weights,
                                  coord_scales=(1.0, 1.0, 4.0))
        total.backward()

    benchmark(step)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode_no_grad(benchmark, model, inputs):
    """Decode baseline under no_grad (graph recording skipped at apply time)."""
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)

    def decode():
        with no_grad():
            return model.decode(grid, coords)

    benchmark(decode)


@pytest.mark.benchmark(group="kernels")
def test_continuous_decode_inference_mode(benchmark, model, inputs):
    """Decode under the inference-mode fast path (lean Op.apply dispatch)."""
    lowres, coords, _ = inputs
    grid = model.latent_grid(lowres)

    def decode():
        with inference_mode():
            return model.decode(grid, coords)

    benchmark(decode)
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="precision")
def test_float32_inference_speedup_and_memory(benchmark, bench_artifact, run_traced):
    """Float32 policy on the inference hot path: ≥1.5x throughput, ≥1.8x memory cut.

    Runs the same full-domain encode + fused decode workload through a
    float64 engine and a weight-cast float32 engine (fresh engines per
    measured pass, so every pass pays encode + decode), asserting the PR's
    precision acceptance criteria and recording both data points in the
    ``BENCH_pr3.json`` artifact.
    """
    domain_shape = (4, 32, 64)
    output_shape = (8, 64, 128)
    # Large fused decode batches: at 4096 slots both dtypes fit in cache and
    # only the BLAS width differs (~1.5x); at 16k slots the float64 working
    # set spills L3, which is exactly the memory-bandwidth cost the float32
    # serving path exists to halve.
    chunk_size = 16384
    rng = np.random.default_rng(0)
    lowres = rng.standard_normal((1, 4, *domain_shape))
    model64 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    model32 = model64.replicate(1, share_parameters=False)[0].astype("float32")
    n_points = int(np.prod(output_shape))

    def run(model):
        engine = InferenceEngine(model, chunk_size=chunk_size)  # cold cache
        return engine.predict_grid(lowres, output_shape)

    # Interleave the timed passes so drift in background load hits both
    # dtypes symmetrically; gate on the fastest round of each.
    t64 = t32 = np.inf
    for _ in range(3):
        start = time.perf_counter()
        out64 = run(model64)
        t64 = min(t64, time.perf_counter() - start)
        start = time.perf_counter()
        out32 = run(model32)
        t32 = min(t32, time.perf_counter() - start)

    peak64 = run_traced(lambda: run(model64))[1]
    peak32 = run_traced(lambda: run(model32))[1]
    benchmark.pedantic(lambda: run(model32), rounds=1, iterations=1)

    assert out64.dtype == np.float64 and out32.dtype == np.float32
    assert np.max(np.abs(out64 - out32)) < 1e-4  # float32-tolerance agreement

    speedup = t64 / t32
    memory_cut = peak64 / max(peak32, 1)
    for dtype, seconds, peak in (("float64", t64, peak64), ("float32", t32, peak32)):
        bench_artifact(
            f"inference_predict_grid[{dtype}]", dtype=dtype,
            throughput=round(n_points / seconds), throughput_unit="points/s",
            latency_ms={"p50": round(seconds * 1e3, 3)}, peak_bytes=int(peak),
        )
    benchmark.extra_info.update({
        "float32_speedup": round(speedup, 2),
        "float32_memory_cut": round(memory_cut, 2),
        "float64_points_per_sec": round(n_points / t64),
        "float32_points_per_sec": round(n_points / t32),
    })
    assert speedup >= 1.5, (
        f"float32 throughput gain {speedup:.2f}x below the 1.5x acceptance bar "
        f"(float64 {t64 * 1e3:.0f} ms vs float32 {t32 * 1e3:.0f} ms)"
    )
    assert memory_cut >= 1.8, (
        f"float32 peak-memory cut {memory_cut:.2f}x below the 1.8x acceptance bar "
        f"(float64 {peak64 / 1e6:.1f} MB vs float32 {peak32 / 1e6:.1f} MB)"
    )


def _interleaved_best(fn_a, fn_b, rounds):
    """Fastest round of two callables timed alternately (drift-symmetric)."""
    best_a = best_b = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


@pytest.mark.benchmark(group="compile")
def test_compiled_decode_speedup_and_equivalence(benchmark, bench_artifact):
    """Compiled ImNet decode: ≥1.5x on the derivative stack, bit-identical.

    The PR 5 acceptance gate, on the two decode workloads the paper's hot
    loop runs:

    * the **second-order derivative stack** (``forward_with_derivatives``
      pattern feeding the PDE equation loss) — where graph capture
      genuinely changes the cost model: the eager tape applies ~100
      primitives and walks two backward graphs per evaluation, while the
      compiled plan replays ~30 fused ops after dead-code elimination.
      Enforced at **≥1.5x** (measured ≈3–4.5x steady-state);
    * the plain **forward decode**, which is transcendental-bound
      (softplus), so removing Python dispatch and allocations yields a
      steadier ≈1.2x — sanity-gated at ≥1.05x so the fused executor can
      never regress below eager, and recorded for both precisions.

    All timings are interleaved min-of-rounds in a warmed process (both
    paths run once before timing), so allocator warm-up and background
    drift hit eager and compiled symmetrically.  Outputs are asserted
    bit-identical and plans fully lowered (zero fallback allocations).
    """
    from repro import compile as rc
    from repro.autodiff import grad, ops
    from repro.backend import precision

    model64 = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    model32 = model64.replicate(1, share_parameters=False)[0].astype("float32")
    batch, n_points = 2, 4096
    rng = np.random.default_rng(0)
    block = rng.standard_normal((batch, n_points, model64.imnet.in_features))

    # ---------------------------------------------------- forward decode
    forward_speedups = {}
    for name, model in (("float64", model64), ("float32", model32)):
        with precision(name):
            x = Tensor(block.astype(model.dtype))
            compiled = rc.compile(model.imnet, copy_outputs=False)
            with inference_mode():
                out_eager, out_compiled = model.imnet(x), compiled(x)  # warm both
                assert np.array_equal(out_eager.data, out_compiled.data)
                t_eager, t_compiled = _interleaved_best(
                    lambda: model.imnet(x), lambda: compiled(x), rounds=10)
        stats = compiled.plans[0].stats
        assert stats.n_fallback == 0 and compiled.plans[0].runtime_allocs == 0
        forward_speedups[name] = t_eager / t_compiled
        for mode, seconds in (("eager", t_eager), ("compiled", t_compiled)):
            bench_artifact(
                f"imnet_decode[{name},{mode}]", artifact="BENCH_pr5.json",
                dtype=name, mode=mode,
                throughput=round(batch * n_points / seconds), throughput_unit="points/s",
                latency_ms={"p50": round(seconds * 1e3, 3)},
            )
        benchmark.extra_info[f"{name}_forward_speedup"] = round(forward_speedups[name], 2)

    # ----------------------------------------- second-order derivative stack
    imnet = model64.imnet

    def derivative_stack(xin):
        y = imnet(xin)
        g1 = grad(ops.sum(y), xin, create_graph=True)
        d_dt = ops.getitem(g1, (slice(None), slice(None), 0))
        g2 = grad(ops.sum(d_dt), xin, create_graph=True)
        return y, g1, g2

    xg = Tensor(block[:, :1024], requires_grad=True)
    compiled_stack = rc.compile_fn(derivative_stack, copy_outputs=False)
    eager_out, compiled_out = derivative_stack(xg), compiled_stack(xg)  # warm both
    for e, c in zip(eager_out, compiled_out):
        assert np.array_equal(e.data, c.data)
    assert compiled_stack.plans[0].runtime_allocs == 0
    t_eager, t_compiled = _interleaved_best(
        lambda: derivative_stack(xg), lambda: compiled_stack(xg), rounds=7)
    derivative_speedup = t_eager / t_compiled
    for mode, seconds in (("eager", t_eager), ("compiled", t_compiled)):
        bench_artifact(
            f"imnet_decode_derivatives[float64,{mode}]", artifact="BENCH_pr5.json",
            dtype="float64", mode=mode,
            throughput=round(batch * 1024 / seconds), throughput_unit="points/s",
            latency_ms={"p50": round(seconds * 1e3, 3)},
        )
    benchmark.extra_info["derivative_stack_speedup"] = round(derivative_speedup, 2)
    benchmark.pedantic(lambda: compiled_stack(xg), rounds=1, iterations=1)

    assert derivative_speedup >= 1.5, (
        f"compiled derivative-stack decode gain {derivative_speedup:.2f}x below "
        f"the 1.5x acceptance bar"
    )
    assert forward_speedups["float64"] >= 1.05, (
        f"compiled forward decode {forward_speedups['float64']:.2f}x regressed "
        f"below eager (sanity floor 1.05x)"
    )


@pytest.mark.benchmark(group="compile")
def test_compiled_engine_decode_end_to_end(benchmark, bench_artifact):
    """Engine-level compiled decode: bit-identical, throughput recorded.

    The full ``predict_grid`` pipeline (gather + decode + blend) with the
    decode batches running through compiled plans.  Only the MLP portion
    compiles — the gather stays eager NumPy — so this records the
    end-to-end gain without gating on it (the enforced bar lives on the
    decode kernel above).
    """
    model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    rng = np.random.default_rng(0)
    lowres = rng.standard_normal((1, 4, 4, 16, 32))
    out_shape = (8, 32, 64)
    n_points = int(np.prod(out_shape))
    eager = InferenceEngine(model)
    compiled = InferenceEngine(model, compile=True)
    out_e = eager.predict_grid(lowres, out_shape)
    out_c = compiled.predict_grid(lowres, out_shape)
    assert np.array_equal(out_e, out_c)
    t_eager = t_compiled = np.inf
    for _ in range(3):
        start = time.perf_counter()
        eager.predict_grid(lowres, out_shape)
        t_eager = min(t_eager, time.perf_counter() - start)
        start = time.perf_counter()
        compiled.predict_grid(lowres, out_shape)
        t_compiled = min(t_compiled, time.perf_counter() - start)
    for mode, seconds in (("eager", t_eager), ("compiled", t_compiled)):
        bench_artifact(
            f"engine_predict_grid[{mode}]", artifact="BENCH_pr5.json",
            dtype="float64", mode=mode,
            throughput=round(n_points / seconds), throughput_unit="points/s",
            latency_ms={"p50": round(seconds * 1e3, 3)},
        )
    benchmark.extra_info["end_to_end_speedup"] = round(t_eager / t_compiled, 2)
    benchmark.pedantic(lambda: compiled.predict_grid(lowres, out_shape),
                       rounds=1, iterations=1)


@pytest.mark.benchmark(group="obs")
def test_instrumentation_overhead_compiled_decode(benchmark, bench_artifact):
    """Observability tax on compiled decode: disabled path within 3% of raw.

    The PR 7 acceptance gate.  With instrumentation off, the only per-call
    additions on the compiled decode hot path are module-level flag reads
    and a shared no-op span, so a warmed ``compiled(x)`` call must stay
    within **3%** of invoking the underlying plan directly (interleaved
    min-of-rounds, drift-symmetric).  The costs of actually turning
    observability *on* — spans-only tracing and full per-op/per-kernel
    profiling — are measured and recorded in ``BENCH_pr7.json`` without a
    gate, so the artifact documents what each level buys and costs.
    Outputs are asserted bit-identical across every mode.
    """
    from repro import compile as rc
    from repro import obs

    model = MeshfreeFlowNet(MeshfreeFlowNetConfig.tiny()).eval()
    # Large decode batch: the wrapper's fixed dispatch cost (tensor wrap,
    # cache-key build — pre-existing, not observability) must amortize so
    # the gate measures the instrumentation seams, not Python call overhead.
    batch, n_points = 2, 16384
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((batch, n_points, model.imnet.in_features)))
    compiled = rc.compile(model.imnet, copy_outputs=False)

    def run_wrapper():
        with inference_mode():
            return compiled(x)

    obs.disable()
    obs.clear_events()
    reference = run_wrapper().data.copy()  # warm: trace + lower once
    plan = compiled.plans[0]

    def best(fn, rounds=15):
        t = np.inf
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            t = min(t, time.perf_counter() - start)
        return t

    try:
        # Gate pair: raw plan replay vs the obs-aware wrapper, both cold
        # instrumentation.  Interleaved so background drift hits both
        # sides, and repeated in independent trials with the *smallest*
        # overhead ratio gated: the instrumentation cost is a constant,
        # so timing noise (BLAS/GC jitter is ±1–2% at this scale) can
        # only inflate the measured ratio, never hide a real regression.
        import gc

        gc.collect()
        t_raw = t_disabled = np.inf
        overhead = np.inf
        for _ in range(3):
            trial_raw, trial_disabled = _interleaved_best(
                lambda: plan.run(x.data), run_wrapper, rounds=12)
            if trial_disabled / trial_raw - 1.0 < overhead:
                overhead = trial_disabled / trial_raw - 1.0
                t_raw, t_disabled = trial_raw, trial_disabled
        assert np.array_equal(run_wrapper().data, reference)

        obs.enable(trace=True)
        t_spans = best(run_wrapper)
        assert np.array_equal(run_wrapper().data, reference)

        obs.enable(trace=True, profile_ops=True, profile_kernels=True)
        t_full = best(run_wrapper)
        assert np.array_equal(run_wrapper().data, reference)
    finally:
        obs.disable()
        obs.clear_events()

    for mode, seconds in (("raw_plan", t_raw), ("disabled", t_disabled),
                          ("spans", t_spans), ("full_profiling", t_full)):
        bench_artifact(
            f"obs_compiled_decode[{mode}]", artifact="BENCH_pr7.json",
            mode=mode, dtype="float64",
            throughput=round(batch * n_points / seconds), throughput_unit="points/s",
            latency_ms={"p50": round(seconds * 1e3, 3)},
        )
    bench_artifact(
        "obs_disabled_overhead", artifact="BENCH_pr7.json",
        overhead_fraction=round(overhead, 4), bound=0.03,
    )
    benchmark.extra_info.update({
        "disabled_overhead_pct": round(overhead * 100, 2),
        "spans_overhead_pct": round((t_spans / t_raw - 1.0) * 100, 2),
        "full_profiling_overhead_pct": round((t_full / t_raw - 1.0) * 100, 2),
    })
    benchmark.pedantic(run_wrapper, rounds=1, iterations=1)
    assert overhead <= 0.03, (
        f"disabled-instrumentation overhead {overhead * 100:.2f}% exceeds the "
        f"3% acceptance bound (raw {t_raw * 1e3:.3f} ms vs wrapper "
        f"{t_disabled * 1e3:.3f} ms)"
    )


@pytest.mark.benchmark(group="kernels")
def test_solver_step(benchmark):
    solver = RayleighBenardSolver(RayleighBenardConfig(nz=32, nx=128, t_final=1.0, seed=0))
    benchmark(lambda: solver.step(1e-3))
    report_percentiles(benchmark)


@pytest.mark.benchmark(group="kernels")
def test_ring_allreduce_8_ranks(benchmark):
    rng = np.random.default_rng(0)
    buffers = [rng.standard_normal(40_000) for _ in range(8)]
    benchmark(lambda: ring_allreduce(buffers, average=True))
