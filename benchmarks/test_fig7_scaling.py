"""Figure 7 — scaling study: throughput (7a), loss vs epochs (7b), loss vs wall time (7c).

Paper numbers to compare against: ≈96.80 % scaling efficiency and ≈1.9×10³
samples/s aggregate throughput at 128 GPUs; identical per-epoch loss curves
for 1–16 workers; drastically shorter wall time per epoch at high worker
counts.
"""

import pytest

from repro.experiments import run_fig7_scaling


@pytest.mark.benchmark(group="fig7")
def test_fig7a_throughput_and_efficiency(benchmark, once):
    result = once(benchmark, run_fig7_scaling, scale="tiny",
                  world_sizes=(1, 2, 4, 8, 16, 32, 64, 128), train_curves=False)
    throughput = result["throughput"]
    tps = [throughput[w]["throughput"] for w in (1, 2, 4, 8, 16, 32, 64, 128)]
    assert all(b > a for a, b in zip(tps, tps[1:]))          # monotone scaling
    assert result["efficiency_at_max"] == pytest.approx(0.968, abs=0.02)   # paper: 96.80 %
    assert 1.7e3 < throughput[128]["throughput"] < 2.1e3                   # paper: ~1.93e3 samples/s
    print()
    print("Fig. 7a (performance model):")
    for w in (1, 2, 4, 8, 16, 32, 64, 128):
        p = throughput[w]
        print(f"  {w:4d} workers  throughput={p['throughput']:9.1f} samples/s  "
              f"efficiency={p['efficiency']:.4f}  epoch={p['epoch_time']:.2f}s")


@pytest.mark.benchmark(group="fig7")
def test_fig7bc_loss_curves(benchmark, bench_scale, once):
    result = once(benchmark, run_fig7_scaling, scale=bench_scale,
                  world_sizes=(1, 2, 16, 128), curve_world_sizes=(1, 2), epochs=2)
    curves = result["loss_curves"]
    assert set(curves) == {1, 2}
    for ws, curve in curves.items():
        assert len(curve["loss"]) == 2
        assert curve["wall_time"][-1] > curve["wall_time"][0] > 0
    # More workers -> shorter modelled wall time per epoch (Fig. 7c).
    assert curves[2]["modelled_epoch_time"] < curves[1]["modelled_epoch_time"]
    print()
    for ws, curve in curves.items():
        print(f"Fig. 7b/c  {ws} workers: losses={['%.4f' % l for l in curve['loss']]}, "
              f"epoch wall time={curve['modelled_epoch_time']:.2f}s")
