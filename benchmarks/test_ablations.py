"""Ablation benchmarks for the design choices called out in DESIGN.md."""

import pytest

from repro.experiments import (
    run_ablation_activation,
    run_ablation_allreduce,
    run_ablation_capacity,
    run_ablation_interpolation,
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_decoder_activation(benchmark, bench_scale, once):
    """Smooth (softplus) vs. piecewise-linear (relu) decoder activations under the equation loss."""
    result = once(benchmark, run_ablation_activation, scale=bench_scale,
                  activations=("softplus", "relu"), gamma=0.0125)
    assert set(result["reports"]) == {"activation=softplus", "activation=relu"}


@pytest.mark.benchmark(group="ablation")
def test_ablation_latent_interpolation(benchmark, bench_scale, once):
    """Trilinear blending of the 8 bounding latent vectors (Eqn. 6) vs. nearest vertex."""
    result = once(benchmark, run_ablation_interpolation, scale=bench_scale)
    assert set(result["reports"]) == {"interpolation=trilinear", "interpolation=nearest"}


@pytest.mark.benchmark(group="ablation")
def test_ablation_latent_capacity(benchmark, bench_scale, once):
    """Latent context grid width: fewer channels -> fewer parameters."""
    result = once(benchmark, run_ablation_capacity, scale=bench_scale, latent_channels=(2, 6))
    counts = result["parameter_counts"]
    assert counts["latent=2"] < counts["latent=6"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_allreduce_overlap(benchmark, once):
    """Communication/computation overlap and ring vs. naive all-reduce cost."""
    result = once(benchmark, run_ablation_allreduce,
                  world_sizes=(1, 8, 128), overlap_fractions=(0.0, 0.9))
    eff_no = result["results"]["overlap=0"][128]["efficiency"]
    eff_yes = result["results"]["overlap=0.9"][128]["efficiency"]
    assert eff_yes > eff_no
    assert result["ring_vs_naive_comm_time"]["ring"] < result["ring_vs_naive_comm_time"]["naive"]
